"""Seeded multi-tenant traffic generation for the KV service.

A :class:`TrafficSpec` describes a reproducible stream of KV operations
across tenants: who issues (tenant weights), what they issue (per-kind
operation mix, Zipf key-popularity skew) and *when* they issue it:

* **open-loop** — arrivals follow a rate process independent of
  completions, the way internet-facing traffic behaves.  ``poisson``
  draws exponential inter-arrivals at a fixed mean rate; ``bursty``
  modulates the rate with a two-state (ON/OFF) process, producing the
  arrival bursts that stress tail latency.
* **closed-loop** — ``clients`` concurrent clients each issue, wait for
  completion, think for ``think_ns``, and issue again, the way a fixed
  worker pool behaves.  Arrival instants then *depend on completions*,
  so they are computed during SLO replay (:mod:`repro.service.slo`),
  not here; the stream carries the issuing client instead.

Open-loop arrivals can additionally be modulated by a
:class:`LoadShape` — a Locust-style rate envelope (ramp, spike, step)
multiplied onto the arrival model's instantaneous rate.

Everything is derived from one ``random.Random(seed)`` stream, so the
same spec produces a bit-identical operation stream on every run —
the determinism the snapshot-resume and SLO-report tests rely on.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ServiceError
from ..workloads.base import zipf_index

#: Operation kinds a traffic mix weights, in canonical order.
OP_KINDS = ("put", "get", "delete", "scan")

#: Arrival models for open-loop traffic.
ARRIVAL_MODELS = ("poisson", "bursty")

#: Traffic modes.
MODES = ("open", "closed")

#: Load-shape kinds an open-loop stream can be modulated with.
SHAPE_KINDS = ("constant", "ramp", "spike", "step")


@dataclass(frozen=True)
class LoadShape:
    """A deterministic rate envelope over the arrival process.

    Locust-style load shaping: the instantaneous arrival rate is the
    spec's base rate (Poisson or bursty) multiplied by this shape's
    ``factor(now)``.  Shapes compose *over* the arrival model rather
    than replacing it — a ``spike`` over ``bursty`` arrivals spikes the
    modulated rate, ON and OFF phases alike.

    * ``constant`` — ``start_factor`` throughout (the default 1.0 is a
      no-op envelope).
    * ``ramp`` — linear from ``start_factor`` to ``end_factor`` across
      ``duration_us``, holding ``end_factor`` afterwards.
    * ``spike`` — ``start_factor`` baseline, jumping to ``peak_factor``
      inside the ``[spike_start_us, spike_start_us + spike_width_us)``
      window.
    * ``step`` — a staircase of ``steps`` equal plateaus from
      ``start_factor`` to ``end_factor`` across ``duration_us``,
      holding the final plateau afterwards.
    """

    kind: str = "constant"
    start_factor: float = 1.0
    end_factor: float = 1.0
    #: Horizon of the ramp/step transition, in modeled microseconds.
    duration_us: float = 100.0
    #: Spike window and height (``spike`` only).
    peak_factor: float = 4.0
    spike_start_us: float = 25.0
    spike_width_us: float = 10.0
    #: Plateaus in a ``step`` staircase (including both endpoints).
    steps: int = 4

    def __post_init__(self) -> None:
        if self.kind not in SHAPE_KINDS:
            raise ServiceError("load shape must be one of %s" % (SHAPE_KINDS,))
        if self.start_factor <= 0 or self.end_factor <= 0 or self.peak_factor <= 0:
            raise ServiceError("load-shape factors must be positive")
        if self.duration_us <= 0:
            raise ServiceError("load-shape duration must be positive")
        if self.spike_start_us < 0 or self.spike_width_us <= 0:
            raise ServiceError("spike window must be non-negative and non-empty")
        if self.steps < 2:
            raise ServiceError("a step shape needs at least two plateaus")

    def factor(self, now_us: float) -> float:
        """Rate multiplier at modeled instant ``now_us``."""
        if self.kind == "ramp":
            if now_us >= self.duration_us:
                return self.end_factor
            frac = max(now_us, 0.0) / self.duration_us
            return self.start_factor + (self.end_factor - self.start_factor) * frac
        if self.kind == "spike":
            start, width = self.spike_start_us, self.spike_width_us
            if start <= now_us < start + width:
                return self.peak_factor
            return self.start_factor
        if self.kind == "step":
            if now_us >= self.duration_us:
                return self.end_factor
            plateau = int(max(now_us, 0.0) / self.duration_us * self.steps)
            frac = plateau / (self.steps - 1)
            return self.start_factor + (self.end_factor - self.start_factor) * min(
                frac, 1.0
            )
        return self.start_factor

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "start_factor": self.start_factor,
            "end_factor": self.end_factor,
            "duration_us": self.duration_us,
            "peak_factor": self.peak_factor,
            "spike_start_us": self.spike_start_us,
            "spike_width_us": self.spike_width_us,
            "steps": self.steps,
        }


@dataclass(frozen=True)
class TrafficSpec:
    """One reproducible traffic scenario (all times in modeled ns)."""

    tenants: int = 4
    operations: int = 200
    seed: int = 42
    #: "open" (rate-driven arrivals) or "closed" (client/think loop).
    mode: str = "open"
    #: Open-loop arrival process: "poisson" or "bursty".
    arrival: str = "poisson"
    #: Open-loop mean arrival rate in operations per microsecond of
    #: modeled time (0.5 = one op every 2 µs on average).
    rate_ops_per_us: float = 0.25
    #: Bursty: ON-phase rate multiplier and stationary ON fraction.
    #: ``burst_factor * burst_fraction`` must stay below 1 so the OFF
    #: phase keeps a positive rate.
    burst_factor: float = 3.0
    burst_fraction: float = 0.25
    #: Closed-loop: concurrent clients and per-op think time.
    clients: int = 8
    think_ns: float = 1500.0
    #: Key-popularity skew (0 = uniform; ~1 = strong head).
    zipf_alpha: float = 0.9
    #: Distinct keys per tenant namespace.
    keyspace: int = 256
    #: Operation mix weights in :data:`OP_KINDS` order.
    mix: Tuple[float, float, float, float] = (0.50, 0.42, 0.05, 0.03)
    #: Per-tenant traffic shares (uniform when None).
    tenant_weights: Optional[Tuple[float, ...]] = None
    #: Keys spanned by one range scan.
    scan_span: int = 16
    #: Open-loop rate envelope (None = flat).  Composes over the
    #: arrival model: the instantaneous rate is the base (or ON/OFF)
    #: rate times ``shape.factor(now)``.
    shape: Optional[LoadShape] = None

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise ServiceError("traffic needs at least one tenant")
        if self.operations < 1:
            raise ServiceError("traffic needs at least one operation")
        if self.mode not in MODES:
            raise ServiceError("traffic mode must be one of %s" % (MODES,))
        if self.arrival not in ARRIVAL_MODELS:
            raise ServiceError(
                "arrival model must be one of %s" % (ARRIVAL_MODELS,)
            )
        if self.rate_ops_per_us <= 0:
            raise ServiceError("arrival rate must be positive")
        if not 0 < self.burst_fraction < 1:
            raise ServiceError("burst_fraction must be in (0, 1)")
        if self.burst_factor < 1:
            raise ServiceError("burst_factor must be >= 1")
        if self.burst_factor * self.burst_fraction >= 1:
            raise ServiceError(
                "burst_factor * burst_fraction must stay below 1 "
                "(the OFF phase needs a positive rate)"
            )
        if self.clients < 1:
            raise ServiceError("closed-loop traffic needs at least one client")
        if self.think_ns < 0:
            raise ServiceError("think time cannot be negative")
        if self.zipf_alpha < 0:
            raise ServiceError("zipf_alpha cannot be negative")
        if self.keyspace < 2:
            raise ServiceError("keyspace must hold at least two keys")
        if len(self.mix) != len(OP_KINDS) or any(w < 0 for w in self.mix):
            raise ServiceError(
                "mix needs one non-negative weight per kind %s" % (OP_KINDS,)
            )
        if sum(self.mix) <= 0:
            raise ServiceError("mix weights must sum to a positive value")
        if self.tenant_weights is not None:
            if len(self.tenant_weights) != self.tenants:
                raise ServiceError("tenant_weights must have one entry per tenant")
            if any(w < 0 for w in self.tenant_weights) or sum(self.tenant_weights) <= 0:
                raise ServiceError("tenant_weights must be non-negative, sum > 0")
        if self.scan_span < 1:
            raise ServiceError("scan_span must be positive")
        if self.shape is not None and self.mode != "open":
            raise ServiceError(
                "load shapes modulate open-loop arrivals; closed-loop "
                "pacing comes from clients/think_ns"
            )

    def as_dict(self) -> dict:
        return {
            "tenants": self.tenants,
            "operations": self.operations,
            "seed": self.seed,
            "mode": self.mode,
            "arrival": self.arrival,
            "rate_ops_per_us": self.rate_ops_per_us,
            "burst_factor": self.burst_factor,
            "burst_fraction": self.burst_fraction,
            "clients": self.clients,
            "think_ns": self.think_ns,
            "zipf_alpha": self.zipf_alpha,
            "keyspace": self.keyspace,
            "mix": list(self.mix),
            "tenant_weights": (
                list(self.tenant_weights) if self.tenant_weights is not None else None
            ),
            "scan_span": self.scan_span,
            "shape": self.shape.as_dict() if self.shape is not None else None,
        }


@dataclass(frozen=True)
class Operation:
    """One KV request in the generated stream."""

    index: int
    tenant: int
    kind: str
    key: int
    value: int = 0
    #: Scan upper bound (inclusive); 0 for non-scan kinds.
    key_hi: int = 0
    #: Open-loop modeled arrival instant; None in closed-loop mode.
    arrival_ns: Optional[float] = None
    #: Closed-loop issuing client; None in open-loop mode.
    client: Optional[int] = None

    def as_tuple(self) -> tuple:
        return (
            self.index,
            self.tenant,
            self.kind,
            self.key,
            self.value,
            self.key_hi,
            self.arrival_ns,
            self.client,
        )


class _ArrivalProcess:
    """Open-loop arrival clock: Poisson or ON/OFF-modulated Poisson."""

    #: Per-arrival probability of leaving the ON phase; together with
    #: the stationary ON fraction this sets the OFF->ON probability, so
    #: bursts last a handful of arrivals on average.
    _LEAVE_ON = 0.2

    def __init__(self, spec: TrafficSpec, rng: random.Random) -> None:
        self.spec = spec
        self.rng = rng
        self.now_ns = 0.0
        base = spec.rate_ops_per_us / 1000.0  # ops per ns
        if spec.arrival == "bursty":
            self.rate_on = base * spec.burst_factor
            self.rate_off = base * (
                (1.0 - spec.burst_factor * spec.burst_fraction)
                / (1.0 - spec.burst_fraction)
            )
            self.on = rng.random() < spec.burst_fraction
            on_frac = spec.burst_fraction
            self.p_on_off = self._LEAVE_ON
            self.p_off_on = self._LEAVE_ON * on_frac / (1.0 - on_frac)
        else:
            self.rate_on = self.rate_off = base
            self.on = True
            self.p_on_off = self.p_off_on = 0.0

    def next_arrival(self) -> float:
        rate = self.rate_on if self.on else self.rate_off
        shape = self.spec.shape
        if shape is not None:
            rate *= shape.factor(self.now_ns / 1000.0)
        self.now_ns += self.rng.expovariate(rate)
        if self.spec.arrival == "bursty":
            flip = self.p_on_off if self.on else self.p_off_on
            if self.rng.random() < flip:
                self.on = not self.on
        return self.now_ns


def generate_operations(spec: TrafficSpec) -> List[Operation]:
    """The deterministic operation stream for ``spec``.

    Open-loop streams are emitted in arrival order with precomputed
    arrival instants; closed-loop streams are emitted in issue order
    with round-robin-seeded client assignment (arrivals are derived
    from completions during SLO replay).
    """
    rng = random.Random(spec.seed)
    weights = (
        list(spec.tenant_weights)
        if spec.tenant_weights is not None
        else [1.0] * spec.tenants
    )
    kinds = list(OP_KINDS)
    mix = list(spec.mix)
    arrivals = _ArrivalProcess(spec, rng) if spec.mode == "open" else None
    operations: List[Operation] = []
    for index in range(spec.operations):
        tenant = rng.choices(range(spec.tenants), weights=weights)[0]
        kind = rng.choices(kinds, weights=mix)[0]
        key = 1 + zipf_index(rng, spec.keyspace, spec.zipf_alpha)
        value = rng.getrandbits(32) | 1
        key_hi = 0
        if kind == "scan":
            key_hi = min(key + spec.scan_span - 1, spec.keyspace)
        arrival_ns = arrivals.next_arrival() if arrivals is not None else None
        client = index % spec.clients if spec.mode == "closed" else None
        operations.append(
            Operation(
                index=index,
                tenant=tenant,
                kind=kind,
                key=key,
                value=value,
                key_hi=key_hi,
                arrival_ns=arrival_ns,
                client=client,
            )
        )
    return operations


def stream_fingerprint(operations: List[Operation]) -> str:
    """Content hash of a generated stream (determinism checks)."""
    digest = hashlib.sha256()
    for op in operations:
        digest.update(repr(op.as_tuple()).encode())
    return digest.hexdigest()
