"""Per-request latency attribution and streamed SLO percentiles.

The simulator's timing model produces one commit-barrier completion
time per transaction (``SimulationResult.txn_end_times``); the service
trace is single-writer, so those times are a serial *service schedule*.
This module turns that schedule into request-level metrics:

* **Latency attribution** (:func:`attribute_latencies`) — each
  operation's service demand is the simulated time between the previous
  operation's acknowledgement and its own (its splits and probe reads
  included).  The demand is replayed against the traffic model's
  arrival process: open-loop requests queue behind the single writer
  (latency = queueing + service), closed-loop requests are re-issued by
  each client after a think time, so arrivals depend on completions.
* **Streaming percentiles** (:class:`LatencyHistogram`) — a sparse
  logarithmic-bucket histogram (~3% relative resolution) that streams
  p50/p99/p999 without retaining per-request samples, merges across
  shards, and is bit-deterministic for a fixed input order.
* **SLO summaries** (:func:`summarize_tenants`) — per-tenant
  percentiles, throughput and acknowledgement counts; the crash
  scenario layer (:mod:`repro.service.scenario`) fills in the
  durability triage (acknowledged-but-lost vs recovered) from the
  post-crash validator verdict.

All times are modeled nanoseconds; nothing here reads a wall clock, so
reports are reproducible byte-for-byte.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import ServiceError
from .kv import ServiceRun
from .traffic import TrafficSpec

#: Histogram bucket growth: 2**(1/16) per bucket — 16 buckets per
#: octave, ~4.4% worst-case relative error on a reported percentile.
_BUCKETS_PER_OCTAVE = 16
_GROWTH_LOG = math.log(2.0) / _BUCKETS_PER_OCTAVE


class LatencyHistogram:
    """Sparse log-bucket histogram for streamed latency percentiles.

    Values are binned by ``floor(log2(value) * 16)``; each bucket spans
    a fixed *ratio*, so resolution is relative (sub-5%) from
    nanoseconds to seconds without preallocating arrays.  Recording,
    merging and percentile extraction are all deterministic.
    """

    def __init__(self) -> None:
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.sum_ns = 0.0
        self.max_ns = 0.0

    @staticmethod
    def _bucket_of(value_ns: float) -> int:
        if value_ns < 1.0:
            return 0
        return 1 + int(math.log(value_ns) / _GROWTH_LOG)

    @staticmethod
    def _bucket_upper(bucket: int) -> float:
        if bucket == 0:
            return 1.0
        return math.exp(bucket * _GROWTH_LOG)

    def record(self, value_ns: float) -> None:
        if value_ns < 0:
            raise ServiceError("latencies cannot be negative")
        bucket = self._bucket_of(value_ns)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
        self.count += 1
        self.sum_ns += value_ns
        if value_ns > self.max_ns:
            self.max_ns = value_ns

    def merge(self, other: "LatencyHistogram") -> None:
        for bucket, count in other._buckets.items():
            self._buckets[bucket] = self._buckets.get(bucket, 0) + count
        self.count += other.count
        self.sum_ns += other.sum_ns
        if other.max_ns > self.max_ns:
            self.max_ns = other.max_ns

    def percentile(self, quantile: float) -> float:
        """Upper edge of the bucket holding the ``quantile`` sample.

        Returns 0.0 for an empty histogram.  The true max caps the
        answer so p999 of a small population never exceeds it.
        """
        if not 0.0 < quantile <= 1.0:
            raise ServiceError("quantile must be in (0, 1]")
        if self.count == 0:
            return 0.0
        rank = math.ceil(quantile * self.count)
        seen = 0
        for bucket in sorted(self._buckets):
            seen += self._buckets[bucket]
            if seen >= rank:
                return min(self._bucket_upper(bucket), self.max_ns)
        return self.max_ns  # pragma: no cover - rank <= count always hits

    @property
    def mean_ns(self) -> float:
        return self.sum_ns / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "mean_ns": round(self.mean_ns, 3),
            "max_ns": round(self.max_ns, 3),
            "p50_ns": round(self.percentile(0.50), 3),
            "p99_ns": round(self.percentile(0.99), 3),
            "p999_ns": round(self.percentile(0.999), 3),
        }


@dataclass(frozen=True)
class RequestTiming:
    """One operation's fully-attributed timeline.

    ``ack_ns`` lives on the *simulated trace* clock (comparable with
    crash times and ``txn_end_times``); the arrival/start/completion
    triple lives on the *traffic replay* clock, where the arrival
    process and queueing delays exist.
    """

    op_index: int
    tenant: int
    kind: str
    client: Optional[int]
    #: Commit-barrier completion of the op's last transaction (trace
    #: clock) — the linearization + acknowledgement instant.
    ack_ns: float
    #: Simulated service demand (includes splits the op triggered).
    service_ns: float
    arrival_ns: float
    start_ns: float
    completion_ns: float

    @property
    def latency_ns(self) -> float:
        return self.completion_ns - self.arrival_ns

    @property
    def queue_ns(self) -> float:
        return self.start_ns - self.arrival_ns


def attribute_latencies(
    run: ServiceRun,
    txn_end_times: Sequence[float],
    spec: TrafficSpec,
) -> List[RequestTiming]:
    """Replay the traffic model over the simulated service schedule.

    The single-writer service demand of operation *i* is the simulated
    time between acknowledgement *i-1* and acknowledgement *i* (setup
    transactions are charged to nobody).  Open-loop requests wait for
    the server if it is busy; closed-loop requests are issued by
    ``spec.clients`` clients that think ``spec.think_ns`` between
    completions.
    """
    if len(txn_end_times) != len(run.commit_order):
        raise ServiceError(
            "timing model produced %d txn end times for %d committed "
            "transactions" % (len(txn_end_times), len(run.commit_order))
        )
    spans = run.op_commit_spans()
    timings: List[RequestTiming] = []
    server_free = 0.0
    client_ready = [0.0] * spec.clients
    previous_ack = 0.0
    if run.operations:
        first_span = spans.get(run.operations[0].index)
        if first_span is None:
            raise ServiceError(
                "operation %d committed no transaction" % run.operations[0].index
            )
        if first_span[0] > 0:
            # Setup transactions precede the first operation; its
            # service demand starts where they ended.
            previous_ack = txn_end_times[first_span[0] - 1]
    for op in run.operations:
        span = spans.get(op.index)
        if span is None:
            raise ServiceError("operation %d committed no transaction" % op.index)
        ack_ns = txn_end_times[span[1]]
        service_ns = ack_ns - previous_ack
        previous_ack = ack_ns
        if spec.mode == "closed":
            assert op.client is not None
            arrival_ns = client_ready[op.client]
        else:
            assert op.arrival_ns is not None
            arrival_ns = op.arrival_ns
        start_ns = max(arrival_ns, server_free)
        completion_ns = start_ns + service_ns
        server_free = completion_ns
        if spec.mode == "closed":
            assert op.client is not None
            client_ready[op.client] = completion_ns + spec.think_ns
        timings.append(
            RequestTiming(
                op_index=op.index,
                tenant=op.tenant,
                kind=op.kind,
                client=op.client,
                ack_ns=ack_ns,
                service_ns=service_ns,
                arrival_ns=arrival_ns,
                start_ns=start_ns,
                completion_ns=completion_ns,
            )
        )
    return timings


@dataclass
class TenantSLO:
    """One tenant's service-level summary (JSON-ready via as_dict).

    The latency fields cover *acknowledged* operations only: a request
    in flight when the power failed has no latency, it has a durability
    verdict.  The durability triage fields are filled by the scenario
    layer after recovery + validation:

    * ``acked_lost`` — operations the service acknowledged whose
      effects the recovered state does not contain.  **The SLO violation
      that matters**: must be 0 on every crash-consistent design.
    * ``unacked_recovered`` — operations never acknowledged whose
      effects survived anyway (allowed: the crash landed after the
      commit's durability point but before its barrier completed).
    """

    tenant: int
    ops: int = 0
    acked: int = 0
    histogram: LatencyHistogram = field(default_factory=LatencyHistogram)
    acked_lost: int = 0
    unacked_recovered: int = 0
    recovered_prefix: Optional[int] = None
    consistent: Optional[bool] = None

    def throughput_ops_per_ms(self, horizon_ns: float) -> float:
        """Acknowledged operations per modeled millisecond."""
        if horizon_ns <= 0:
            return 0.0
        return self.acked / (horizon_ns / 1e6)

    def as_dict(self, horizon_ns: float) -> Dict[str, object]:
        document: Dict[str, object] = {
            "tenant": self.tenant,
            "ops": self.ops,
            "acked": self.acked,
            "throughput_ops_per_ms": round(self.throughput_ops_per_ms(horizon_ns), 3),
            "latency": self.histogram.as_dict(),
            "durability": {
                "acked_lost": self.acked_lost,
                "unacked_recovered": self.unacked_recovered,
                "recovered_prefix": self.recovered_prefix,
                "consistent": self.consistent,
            },
        }
        return document


def summarize_tenants(
    spec: TrafficSpec,
    timings: Sequence[RequestTiming],
    crash_ns: Optional[float] = None,
) -> List[TenantSLO]:
    """Fold request timings into per-tenant SLO accumulators.

    With ``crash_ns`` set, only operations acknowledged before the
    crash (trace clock) contribute latency samples; later operations
    count as issued-but-unacknowledged and await durability triage.
    """
    slos = [TenantSLO(tenant=tenant) for tenant in range(spec.tenants)]
    for timing in timings:
        slo = slos[timing.tenant]
        slo.ops += 1
        if crash_ns is not None and timing.ack_ns > crash_ns:
            continue
        slo.acked += 1
        slo.histogram.record(timing.latency_ns)
    return slos
