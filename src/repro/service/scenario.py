"""End-to-end KV service scenarios: traffic -> crash -> recover -> SLO.

One :class:`ServiceJob` runs the full story for one design point:

1. generate the seeded traffic stream (:mod:`repro.service.traffic`);
2. execute it through the multi-tenant KV engine into one trace
   (:mod:`repro.service.kv`) and simulate it under the design's timing
   model;
3. optionally cut power mid-traffic via
   :class:`~repro.crash.injector.CrashInjector` — composable with the
   fault-model registry and nested-crash recovery plans;
4. recover every tenant arena through the bounded
   :class:`~repro.crash.session.RecoverySession` ladder and validate
   per-tenant linearizable prefixes;
5. fold the timing model's txn end times into per-tenant latency
   percentiles, throughput, and the durability triage
   (:mod:`repro.service.slo`).

:class:`ServiceRunner` sweeps jobs across designs with the shared
execution backends (inline / pool / workqueue) and the same
journal/resume discipline campaigns use — a killed ``repro-bench
serve`` pointed at the same ``--serve-dir`` resumes instead of
re-running finished designs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..config import fast_config
from ..core.designs import get_design
from ..crash.campaign import JobJournal, job_key
from ..crash.injector import CrashInjector
from ..crash.session import RecoverySession
from ..errors import ServiceError
from ..faults import make_fault_model
from ..sim.machine import Machine
from .kv import ServiceValidator, ServiceWorkload
from .slo import TenantSLO, attribute_latencies, summarize_tenants
from .traffic import TrafficSpec, generate_operations, stream_fingerprint

if TYPE_CHECKING:  # pragma: no cover - import cycle (bench -> crash)
    from ..bench.parallel import SweepExecutor

JOURNAL_NAME = "journal.jsonl"


@dataclass(frozen=True)
class ServiceJob:
    """One (design, traffic, crash plan) service cell; picklable."""

    design: str
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    mechanism: str = "undo"
    #: Cut power mid-traffic (False = crash-free SLO baseline).
    crash: bool = True
    #: Where in the run to crash: fraction of total simulated runtime;
    #: the nearest durability-interesting instant is used.
    crash_fraction: float = 0.5
    #: Optional fault model applied to the crash image (PR 8 registry).
    fault: Optional[str] = None
    fault_params: Tuple[Tuple[str, object], ...] = ()
    #: Sweep a nested mid-recovery power failure as well.
    nested_crash: bool = False
    nested_steps: int = 2
    with_counter_recovery: bool = False
    #: Log entries per tenant arena (bounds lines per transaction).
    log_capacity: int = 48

    def document(self) -> Dict[str, object]:
        return {
            "kind": "kv-service",
            "design": self.design,
            "traffic": self.traffic.as_dict(),
            "mechanism": self.mechanism,
            "crash": self.crash,
            "crash_fraction": self.crash_fraction,
            "fault": self.fault,
            "fault_params": dict(self.fault_params),
            "nested_crash": self.nested_crash,
            "nested_steps": self.nested_steps,
            "with_counter_recovery": self.with_counter_recovery,
            "log_capacity": self.log_capacity,
        }


def _pick_crash_time(injector: CrashInjector, fraction: float) -> float:
    """The durability-interesting instant closest to ``fraction``.

    Candidates are the post-event instants (each distinct durable
    state) plus the between-event midpoints (in-flight states), so the
    crash lands somewhere recovery actually has work to do.
    """
    candidates = sorted(
        set(injector.interesting_times()) | set(injector.midpoint_times())
    )
    if not candidates:
        raise ServiceError("the service trace produced no durability events")
    target = fraction * candidates[-1]
    return min(candidates, key=lambda t: (abs(t - target), t))


def run_service_job(job: ServiceJob) -> Dict[str, object]:
    """Execute one service cell; the (picklable) worker entry point.

    Returns a JSON-ready report document: per-tenant SLOs, the crash
    triage, and enough identity (job key + stream fingerprint) for
    journaled resume and determinism checks.
    """
    if not 0.0 < job.crash_fraction < 1.0:
        raise ServiceError("crash_fraction must be in (0, 1)")
    policy = get_design(job.design)
    config = fast_config()
    spec = job.traffic
    operations = generate_operations(spec)
    workload = ServiceWorkload(
        config,
        spec.tenants,
        mechanism=job.mechanism,
        log_capacity=job.log_capacity,
    )
    workload.execute(operations)
    run = workload.build_run(operations)
    result = Machine(config, policy).run([run.trace])
    txn_ends = result.txn_end_times[0]
    timings = attribute_latencies(run, txn_ends, spec)
    splits = sum(store.splits for store in workload.stores)

    document: Dict[str, object] = {
        "key": job_key(job),
        "job": job.document(),
        "design": job.design,
        "mechanism": job.mechanism,
        "stream_fingerprint": stream_fingerprint(operations),
        "runtime_ns": round(result.stats.runtime_ns, 3),
        "transactions": len(run.commit_order),
        "splits": splits,
    }

    if not job.crash:
        slos = summarize_tenants(spec, timings)
        document["crash"] = None
        document["status"] = "crash-free"
        document["consistent"] = None
        document["tenants"] = [
            slo.as_dict(result.stats.runtime_ns) for slo in slos
        ]
        document["totals"] = _totals(slos, result.stats.runtime_ns)
        return document

    injector = CrashInjector(result)
    crash_ns = _pick_crash_time(injector, job.crash_fraction)
    fault_events: List[Dict[str, object]] = []
    if job.fault is not None:
        model = make_fault_model(job.fault, **dict(job.fault_params))
        image, events = injector.crash_with_faults(
            crash_ns, [model], seed=spec.seed
        )
        fault_events = [event.as_dict() for event in events]
    else:
        image = injector.crash_at(crash_ns)

    plan = None
    if job.nested_crash:
        from ..faults.recovery import RecoveryFaultPlan, nested_point_grid

        # One deterministic schedule (the first of the grid): the serve
        # path is a smoke/report tool; the full grid lives in campaigns.
        schedules = nested_point_grid(job.nested_steps, counter_search=False)
        if schedules:
            plan = RecoveryFaultPlan(schedules[0], seed=spec.seed)

    recoverer = None
    if job.with_counter_recovery and policy.encrypts:
        from ..crash.counter_recovery import CounterRecoverer

        recoverer = CounterRecoverer(config.encryption)

    validator = ServiceValidator(run, txn_end_times=txn_ends)
    session = RecoverySession(
        config,
        encrypted=policy.encrypts,
        plan=plan,
        recoverer=recoverer,
        tree_checked=policy.integrity_tree,
    )

    def classify(recovered, context):
        return validator.classify(recovered, context=context)

    session_result = session.run(image, classify)
    verdict = session_result.verdict

    slos = summarize_tenants(spec, timings, crash_ns=crash_ns)
    prefixes: Dict[int, Optional[int]] = (
        verdict.tenant_prefixes() if verdict is not None else {}
    )
    # op index -> (tenant, last tenant-local txn index): an operation's
    # effects survived iff its last transaction is inside the tenant's
    # recovered prefix.
    last_local: Dict[int, Tuple[int, int]] = {}
    for record in run.commit_order:
        if record.op_index is not None:
            last_local[record.op_index] = (record.tenant, record.local_index)
    for timing in timings:
        tenant, local_index = last_local[timing.op_index]
        prefix = prefixes.get(tenant)
        surviving = prefix is not None and local_index < prefix
        acked = timing.ack_ns <= crash_ns
        if acked and not surviving:
            slos[tenant].acked_lost += 1
        elif not acked and surviving:
            slos[tenant].unacked_recovered += 1
    for slo in slos:
        slo.recovered_prefix = prefixes.get(slo.tenant)
        if verdict is not None:
            # A verdict that failed before per-tenant validation (e.g.
            # a detected decryption failure during log replay) carries
            # no tenant detail: every tenant is inconsistent.
            if slo.tenant < len(verdict.tenants):
                slo.consistent = verdict.tenants[slo.tenant].consistent
            else:
                slo.consistent = False

    document["crash"] = {
        "crash_ns": round(crash_ns, 3),
        "status": session_result.status,
        "detail": session_result.detail,
        "nested_injected": session_result.nested_injected,
        "via_search": session_result.via_search,
        "fault_events": fault_events,
        "detected": list(verdict.detected) if verdict is not None else [],
        "silent": list(verdict.silent) if verdict is not None else [],
    }
    document["status"] = session_result.status
    document["consistent"] = verdict.consistent if verdict is not None else False
    document["tenants"] = [slo.as_dict(crash_ns) for slo in slos]
    document["totals"] = _totals(slos, crash_ns)
    return document


def _totals(slos: Sequence[TenantSLO], horizon_ns: float) -> Dict[str, object]:
    """Cross-tenant aggregate (histograms merged, counters summed)."""
    from .slo import LatencyHistogram

    merged = LatencyHistogram()
    acked = lost = recovered = ops = 0
    for slo in slos:
        merged.merge(slo.histogram)
        ops += slo.ops
        acked += slo.acked
        lost += slo.acked_lost
        recovered += slo.unacked_recovered
    throughput = acked / (horizon_ns / 1e6) if horizon_ns > 0 else 0.0
    return {
        "ops": ops,
        "acked": acked,
        "acked_lost": lost,
        "unacked_recovered": recovered,
        "throughput_ops_per_ms": round(throughput, 3),
        "latency": merged.as_dict(),
    }


@dataclass
class ServiceReport:
    """All designs' SLO reports, plus runner bookkeeping."""

    results: List[Dict[str, object]]
    resumed_jobs: int = 0
    executor_stats: Dict[str, object] = field(default_factory=dict)
    journal_quarantined: int = 0
    journal_superseded: int = 0

    @property
    def acked_lost(self) -> int:
        return sum(r["totals"]["acked_lost"] for r in self.results)

    @property
    def silent(self) -> int:
        """Silent verdicts on designs that promise crash consistency."""
        count = 0
        for result in self.results:
            crash = result.get("crash")
            if not crash:
                continue
            if crash["silent"] and get_design(result["design"]).crash_consistent:
                count += 1
        return count

    @property
    def crashed(self) -> int:
        return sum(1 for r in self.results if r["status"] == "crashed")

    @property
    def durability_violations(self) -> int:
        """Crash-consistent designs that lost acked writes or went silent.

        ``unsafe``-class designs are *expected* to lose acknowledged
        writes — their losses are reported, not counted as violations.
        """
        count = 0
        for result in self.results:
            crash = result.get("crash")
            if not crash:
                continue
            if not get_design(result["design"]).crash_consistent:
                continue
            if result["totals"]["acked_lost"] or crash["silent"]:
                count += 1
        return count

    def as_dict(self) -> Dict[str, object]:
        return {
            "results": self.results,
            "resumed_jobs": self.resumed_jobs,
            "executor": dict(self.executor_stats),
            "journal_quarantined": self.journal_quarantined,
            "journal_superseded": self.journal_superseded,
        }

    def render(self) -> str:
        """Per-design, per-tenant SLO table plus the durability triage."""
        lines: List[str] = []
        lines.append("kv service — %d design report(s)" % len(self.results))
        header = "%-14s %-7s %6s %6s %10s %10s %10s %10s %6s %6s  %s" % (
            "design", "tenant", "ops", "acked", "p50_us", "p99_us",
            "p999_us", "ops/ms", "LOST", "urec", "verdict",
        )
        lines.append(header)
        lines.append("-" * len(header))
        for result in self.results:
            crash = result.get("crash")
            status = result["status"]
            for tenant in result["tenants"]:
                latency = tenant["latency"]
                durability = tenant["durability"]
                verdict = status if crash else "crash-free"
                if durability["consistent"] is False:
                    verdict += "!"
                lines.append(
                    "%-14s %-7d %6d %6d %10.2f %10.2f %10.2f %10.2f %6d %6d  %s"
                    % (
                        result["design"],
                        tenant["tenant"],
                        tenant["ops"],
                        tenant["acked"],
                        latency["p50_ns"] / 1e3,
                        latency["p99_ns"] / 1e3,
                        latency["p999_ns"] / 1e3,
                        tenant["throughput_ops_per_ms"],
                        durability["acked_lost"],
                        durability["unacked_recovered"],
                        verdict,
                    )
                )
            totals = result["totals"]
            summary = (
                "%-14s total   %6d %6d acked, %d acked-but-lost, "
                "%d unacked-recovered"
                % (
                    result["design"],
                    totals["ops"],
                    totals["acked"],
                    totals["acked_lost"],
                    totals["unacked_recovered"],
                )
            )
            if crash:
                summary += "; crash@%.0fns -> %s" % (crash["crash_ns"], status)
                if crash["detail"]:
                    summary += " (%s)" % crash["detail"]
            lines.append(summary)
            lines.append("-" * len(header))
        if self.resumed_jobs:
            lines.append(
                "resumed: %d design report(s) restored from the journal"
                % self.resumed_jobs
            )
        if self.journal_quarantined:
            lines.append(
                "journal: %d torn line(s) quarantined; those jobs re-ran"
                % self.journal_quarantined
            )
        return "\n".join(lines)


class ServiceRunner:
    """Executes service jobs across designs with journal/resume."""

    def __init__(
        self,
        jobs: Sequence[ServiceJob],
        executor: Optional["SweepExecutor"] = None,
        journal_dir: Optional[str] = None,
    ) -> None:
        from ..bench.parallel import SweepExecutor

        if not jobs:
            raise ServiceError("the service runner needs at least one job")
        self.jobs = list(jobs)
        self.executor = executor if executor is not None else SweepExecutor()
        self.journal = JobJournal(
            journal_dir, name=JOURNAL_NAME, require=("key", "totals")
        )

    def run(self) -> ServiceReport:
        """Run (or resume) every job; returns the combined report."""
        keys = [job_key(job) for job in self.jobs]
        completed = self.journal.load()
        results: List[Optional[Dict[str, object]]] = [
            completed.get(key) for key in keys
        ]
        pending = [index for index, result in enumerate(results) if result is None]
        resumed = len(self.jobs) - len(pending)
        if pending:
            fresh = self.executor.map(
                run_service_job,
                [self.jobs[index] for index in pending],
                on_result=lambda _index, value: self.journal.append(value),
                job_ids=[keys[index] for index in pending],
            )
            for index, value in zip(pending, fresh):
                results[index] = value
        return ServiceReport(
            results=results,  # type: ignore[arg-type]
            resumed_jobs=resumed,
            executor_stats=self.executor.stats(),
            journal_quarantined=self.journal.quarantined,
            journal_superseded=self.journal.superseded,
        )
