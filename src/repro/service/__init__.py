"""Multi-tenant KV service over the encrypted-NVMM simulator.

The service subsystem is the ROADMAP's "first-class service scenario":
a linearizable multi-tenant KV engine whose every operation is a
crash-consistent transaction (:mod:`repro.service.kv`), seeded
open/closed-loop traffic generation (:mod:`repro.service.traffic`),
request-level latency attribution with streamed percentiles
(:mod:`repro.service.slo`), and the end-to-end crash/recover/report
scenario runner behind ``repro-bench serve``
(:mod:`repro.service.scenario`).
"""

from .kv import (
    ServiceRun,
    ServiceValidator,
    ServiceVerdict,
    ServiceWorkload,
    TenantKV,
    build_tenant_arenas,
)
from .scenario import ServiceJob, ServiceReport, ServiceRunner, run_service_job
from .slo import LatencyHistogram, RequestTiming, attribute_latencies, summarize_tenants
from .traffic import (
    LoadShape,
    Operation,
    TrafficSpec,
    generate_operations,
    stream_fingerprint,
)

__all__ = [
    "LatencyHistogram",
    "LoadShape",
    "Operation",
    "RequestTiming",
    "ServiceJob",
    "ServiceReport",
    "ServiceRun",
    "ServiceRunner",
    "ServiceValidator",
    "ServiceVerdict",
    "ServiceWorkload",
    "TenantKV",
    "TrafficSpec",
    "attribute_latencies",
    "build_tenant_arenas",
    "generate_operations",
    "run_service_job",
    "stream_fingerprint",
    "summarize_tenants",
]
