"""Trace-driven simulation engine.

Programs are expressed as per-core operation traces (loads, stores with
optional ``CounterAtomic`` tags, ``clwb``, ``counter_cache_writeback``,
``sfence``, compute gaps, transaction markers).  The machine replays the
traces against the cache hierarchy and memory controller, advancing the
globally earliest core first so shared-resource contention is resolved
in time order.
"""

from .machine import Machine, SimulationResult
from .snapshot import (
    CheckpointPolicy,
    SnapshotStore,
    read_snapshot,
    result_fingerprint,
    run_with_checkpoints,
    write_snapshot,
)
from .stats import MachineStats
from .tracefile import dumps_trace, load_traces, loads_trace, save_traces
from .trace import (
    Op,
    OpKind,
    Trace,
    TraceBuilder,
    persist_barrier,
)

__all__ = [
    "Machine",
    "SimulationResult",
    "MachineStats",
    "Op",
    "OpKind",
    "Trace",
    "TraceBuilder",
    "persist_barrier",
    "dumps_trace",
    "loads_trace",
    "save_traces",
    "load_traces",
    "CheckpointPolicy",
    "SnapshotStore",
    "read_snapshot",
    "result_fingerprint",
    "run_with_checkpoints",
    "write_snapshot",
]
