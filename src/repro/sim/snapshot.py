"""Crash-consistent simulation checkpoints.

The simulator studies crash consistency; its own campaigns must survive
crashes too.  This module persists a :class:`repro.sim.machine.Machine`
state capture (see ``Machine.get_state``) into generation-numbered
snapshot files using the same discipline the paper demands of NVM
software:

* **Atomicity** — a snapshot is written to a temporary file in the same
  directory, flushed and ``fsync``'d, then published with an atomic
  ``os.replace``; a crash mid-write leaves the previous generation
  untouched and at worst an orphan ``*.tmp``.
* **Detection** — the header carries a CRC-32 of the body, so a torn or
  bit-flipped snapshot is detected on load and quarantined (renamed to
  ``*.corrupt``) rather than trusted.
* **Versioning** — the header records the repository code hash
  (``repro.utils.versioning.code_version``); a snapshot written by
  different sources is invalidated instead of restored, because resumed
  timing would silently diverge from a fresh run.
* **Recovery** — :meth:`SnapshotStore.load_latest` falls back
  generation by generation past damaged or stale files before giving
  up, mirroring how the campaign engine falls back past corrupt result
  cache entries.

Resume is deterministic: a machine checkpointed at event N and restored
produces a bit-identical :class:`SimulationResult` to the uninterrupted
run (asserted by ``result_fingerprint`` in the test suite).
"""

from __future__ import annotations

import binascii
import hashlib
import json
import os
import pickle
import struct
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import SnapshotCorruptError, SnapshotError, SnapshotVersionError
from .machine import Machine, SimulationResult

#: File magic: identifies a repro checkpoint and its container revision.
MAGIC = b"REPROCKPT1\n"
#: Header format revision inside the container.
FORMAT_VERSION = 1
#: Pickle protocol 4 is available on every supported interpreter.
PICKLE_PROTOCOL = 4

_HEADER_LEN = struct.Struct(">I")


# ---------------------------------------------------------------------------
# Single-file read/write
# ---------------------------------------------------------------------------


def write_snapshot(
    path: str,
    state: dict,
    code: str = "",
    meta: Optional[Dict[str, object]] = None,
) -> str:
    """Atomically publish ``state`` as a snapshot file at ``path``.

    ``code`` is the code-version hash stamped into the header (empty
    disables version checking on load).  Returns ``path``.
    """
    body = pickle.dumps(state, protocol=PICKLE_PROTOCOL)
    header = {
        "format": FORMAT_VERSION,
        "code": code,
        "crc": binascii.crc32(body) & 0xFFFFFFFF,
        "body_bytes": len(body),
        "meta": meta or {},
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    directory = os.path.dirname(os.path.abspath(path)) or "."
    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(MAGIC)
        handle.write(_HEADER_LEN.pack(len(header_bytes)))
        handle.write(header_bytes)
        handle.write(body)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    _fsync_directory(directory)
    return path


def _fsync_directory(directory: str) -> None:
    """Best-effort directory fsync so the rename itself is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def read_snapshot(
    path: str, expected_code: Optional[str] = None
) -> Tuple[dict, Dict[str, object]]:
    """Load and validate one snapshot file; returns ``(state, header)``.

    Raises :class:`SnapshotCorruptError` for torn/garbled/checksum-
    failing files and :class:`SnapshotVersionError` when the container
    format or the recorded code hash does not match ``expected_code``.
    """
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        raise SnapshotError("cannot read snapshot %s: %s" % (path, exc)) from exc
    if not blob.startswith(MAGIC):
        raise SnapshotCorruptError("%s: bad magic (not a snapshot?)" % path)
    offset = len(MAGIC)
    if len(blob) < offset + _HEADER_LEN.size:
        raise SnapshotCorruptError("%s: truncated before header length" % path)
    (header_len,) = _HEADER_LEN.unpack_from(blob, offset)
    offset += _HEADER_LEN.size
    if len(blob) < offset + header_len:
        raise SnapshotCorruptError("%s: truncated header" % path)
    try:
        header = json.loads(blob[offset : offset + header_len].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise SnapshotCorruptError("%s: unparseable header" % path) from exc
    offset += header_len
    if header.get("format") != FORMAT_VERSION:
        raise SnapshotVersionError(
            "%s: format %r, this build reads %d"
            % (path, header.get("format"), FORMAT_VERSION)
        )
    body = blob[offset:]
    if len(body) != header.get("body_bytes"):
        raise SnapshotCorruptError(
            "%s: body is %d bytes, header promised %s"
            % (path, len(body), header.get("body_bytes"))
        )
    if (binascii.crc32(body) & 0xFFFFFFFF) != header.get("crc"):
        raise SnapshotCorruptError("%s: body checksum mismatch" % path)
    if expected_code and header.get("code") != expected_code:
        raise SnapshotVersionError(
            "%s: written by code %s, current code is %s"
            % (path, header.get("code"), expected_code)
        )
    try:
        state = pickle.loads(body)
    except Exception as exc:  # pickle raises a zoo of types on garbage
        raise SnapshotCorruptError("%s: body does not unpickle" % path) from exc
    if not isinstance(state, dict):
        raise SnapshotCorruptError("%s: body is not a state mapping" % path)
    return state, header


# ---------------------------------------------------------------------------
# Generational store
# ---------------------------------------------------------------------------

_SNAPSHOT_PATTERN = "snapshot-%08d.ckpt"
_SNAPSHOT_PREFIX = "snapshot-"
_SNAPSHOT_SUFFIX = ".ckpt"


class SnapshotStore:
    """Generation-numbered snapshots in one directory, newest wins.

    Damaged generations are quarantined (``*.corrupt``), stale-code
    generations deleted; ``load_latest`` walks backwards until a valid
    snapshot is found.  ``keep`` bounds how many generations are kept
    on disk (the quarantine files are never pruned — they are evidence).
    """

    def __init__(self, directory: str, code: str = "", keep: int = 3) -> None:
        if keep < 1:
            raise SnapshotError("a snapshot store must keep at least one generation")
        self.directory = directory
        self.code = code
        self.keep = keep
        self.saved = 0
        self.quarantined = 0
        self.invalidated = 0
        os.makedirs(directory, exist_ok=True)

    # -- naming ------------------------------------------------------------

    def _path(self, generation: int) -> str:
        return os.path.join(self.directory, _SNAPSHOT_PATTERN % generation)

    def generations(self) -> List[int]:
        """Sorted generation numbers currently on disk."""
        found = []
        for name in os.listdir(self.directory):
            if not (name.startswith(_SNAPSHOT_PREFIX) and name.endswith(_SNAPSHOT_SUFFIX)):
                continue
            stem = name[len(_SNAPSHOT_PREFIX) : -len(_SNAPSHOT_SUFFIX)]
            try:
                found.append(int(stem))
            except ValueError:
                continue
        return sorted(found)

    # -- save / load --------------------------------------------------------

    def save(self, state: dict, meta: Optional[Dict[str, object]] = None) -> str:
        """Write the next generation and prune old ones."""
        existing = self.generations()
        generation = (existing[-1] + 1) if existing else 0
        path = write_snapshot(self._path(generation), state, code=self.code, meta=meta)
        self.saved += 1
        self._prune()
        return path

    def _prune(self) -> None:
        generations = self.generations()
        for stale in generations[: -self.keep]:
            try:
                os.unlink(self._path(stale))
            except OSError:
                pass

    def _quarantine(self, generation: int) -> None:
        path = self._path(generation)
        try:
            os.replace(path, path + ".corrupt")
        except OSError:
            pass
        self.quarantined += 1

    def _invalidate(self, generation: int) -> None:
        try:
            os.unlink(self._path(generation))
        except OSError:
            pass
        self.invalidated += 1

    def load_latest(self) -> Optional[Tuple[dict, Dict[str, object]]]:
        """Newest restorable snapshot, falling back past damaged ones.

        Returns ``(state, header)`` or None when no generation (or no
        undamaged, same-code generation) exists.
        """
        for generation in reversed(self.generations()):
            path = self._path(generation)
            try:
                return read_snapshot(path, expected_code=self.code or None)
            except SnapshotCorruptError:
                self._quarantine(generation)
            except SnapshotVersionError:
                self._invalidate(generation)
        return None

    def stats(self) -> Dict[str, int]:
        return {
            "saved": self.saved,
            "quarantined": self.quarantined,
            "invalidated": self.invalidated,
        }


# ---------------------------------------------------------------------------
# Checkpointed execution
# ---------------------------------------------------------------------------


@dataclass
class CheckpointPolicy:
    """When to checkpoint: every N events and/or every S wall seconds."""

    every_events: Optional[int] = None
    every_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.every_events is not None and self.every_events < 1:
            raise SnapshotError("checkpoint cadence must be at least one event")
        if self.every_seconds is not None and self.every_seconds <= 0:
            raise SnapshotError("checkpoint wall-clock cadence must be positive")

    @property
    def enabled(self) -> bool:
        return self.every_events is not None or self.every_seconds is not None


def run_with_checkpoints(
    machine: Machine,
    traces: Sequence,
    store: Optional[SnapshotStore] = None,
    policy: Optional[CheckpointPolicy] = None,
    resume: bool = True,
    on_event: Optional[Callable[[int], None]] = None,
) -> Tuple[SimulationResult, Dict[str, int]]:
    """Run ``machine`` over ``traces`` with periodic durable checkpoints.

    With ``resume`` and an existing valid snapshot in ``store``, the
    machine restores and continues from the checkpointed event instead
    of starting over — the produced :class:`SimulationResult` is
    bit-identical either way.  ``on_event`` (if given) is called with
    the running event count after every simulated event; the resilience
    layer hooks worker heartbeats through it.

    Returns ``(result, stats)`` with ``stats`` covering saves,
    restores, quarantines and invalidations.
    """
    policy = policy or CheckpointPolicy()
    restored_events = 0
    restored = 0
    if store is not None and resume:
        loaded = store.load_latest()
        if loaded is not None:
            state, _header = loaded
            machine.set_state(state)
            restored = 1
            restored_events = machine.events_executed
    if not restored:
        machine.begin(traces)

    next_event_mark = (
        machine.events_executed + policy.every_events
        if policy.every_events is not None
        else None
    )
    last_save_wall = time.monotonic()
    fast = on_event is None
    more = True
    while more:
        if fast:
            # Crash-free fast-forward: nothing observes individual
            # events, so drain them in chunks through the machine's
            # inlined loop.  A chunk lands on exactly the same event
            # boundary as that many step() calls, so checkpoints (and
            # the result) stay bit-identical to the per-event path.
            if store is None or not policy.enabled:
                machine.fast_forward()
                more = False
            elif next_event_mark is not None:
                more = machine.run_events(
                    max(1, next_event_mark - machine.events_executed)
                )
            else:
                # Wall-clock-only policy: bounded chunks keep the
                # every_seconds check responsive.
                more = machine.run_events(1024)
        else:
            more = machine.step()
            on_event(machine.events_executed)
        if store is None or not policy.enabled or not more:
            continue
        due = False
        if next_event_mark is not None and machine.events_executed >= next_event_mark:
            due = True
        if (
            not due
            and policy.every_seconds is not None
            and time.monotonic() - last_save_wall >= policy.every_seconds
        ):
            due = True
        if due:
            store.save(machine.get_state(), meta={"events": machine.events_executed})
            last_save_wall = time.monotonic()
            if next_event_mark is not None:
                next_event_mark = machine.events_executed + policy.every_events

    result = machine.finish()
    stats = {"restored": restored, "restored_events": restored_events}
    if store is not None:
        stats.update(store.stats())
    return result, stats


# ---------------------------------------------------------------------------
# Bit-identity fingerprint
# ---------------------------------------------------------------------------


def result_fingerprint(result: SimulationResult) -> str:
    """Canonical digest of everything a simulation result exposes.

    Two runs with equal fingerprints agree on timing (exact float
    values, not approximations), traffic, per-core accounting, the
    persist journal's final image and the transaction commit times —
    the definition of "bit-identical" used by the resume guarantees.
    """
    journal = result.controller.journal
    data_lines, counter_lines = journal.final_image()
    canonical = (
        result.stats.design,
        result.stats.num_cores,
        result.stats.runtime_ns,
        result.stats.bytes_written,
        result.stats.bytes_read,
        result.stats.transactions,
        result.stats.counter_cache_miss_rate,
        result.stats.data_wq_peak,
        result.stats.counter_wq_peak,
        result.stats.coalesced_data_writes,
        result.stats.coalesced_counter_writes,
        result.stats.paired_writes,
        result.stats.mean_read_latency_ns,
        tuple(tuple(sorted(core.as_dict().items())) for core in result.stats.per_core),
        tuple(tuple(times) for times in result.txn_end_times),
        len(journal),
        tuple(sorted(data_lines.items())),
        tuple(sorted(counter_lines.items())),
    )
    return hashlib.sha256(repr(canonical).encode("utf-8")).hexdigest()
