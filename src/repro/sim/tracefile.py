"""Trace serialization: save and replay simulation inputs.

Traces are the simulator's unit of reproducibility — the same trace
replayed under two designs is what makes the paper's comparisons
apples-to-apples.  This module gives traces a stable on-disk form so
experiments can be archived, diffed, and replayed without re-running
workload generation.

Format: one op per line, whitespace-separated fields, ``#`` comments::

    # trace: array-core0
    T+                        # txn_begin
    W 0x1000 8 ca 0102030405060708   # store, hex payload, counter-atomic
    W 0x1040 8 -  a1a2a3a4a5a6a7a8   # store, plain
    R 0x1000 8                # load
    F 0x1000                  # clwb
    C 0x1000                  # counter_cache_writeback
    S                         # sfence
    P 25.0                    # compute (ns)
    T-                        # txn_end

The format is line-oriented and append-friendly; payloads are optional
(timing-only traces omit them).
"""

from __future__ import annotations

import io
from typing import Iterable, List, Optional, TextIO, Union

from ..errors import TraceError
from .trace import Op, OpKind, Trace

_KIND_TO_CODE = {
    OpKind.LOAD: "R",
    OpKind.STORE: "W",
    OpKind.CLWB: "F",
    OpKind.CCWB: "C",
    OpKind.SFENCE: "S",
    OpKind.COMPUTE: "P",
    OpKind.TXN_BEGIN: "T+",
    OpKind.TXN_END: "T-",
    OpKind.LABEL: "L",
}
_CODE_TO_KIND = {code: kind for kind, code in _KIND_TO_CODE.items()}


def dump_trace(trace: Trace, stream: TextIO) -> None:
    """Write one trace in the line format."""
    stream.write("# trace: %s\n" % (trace.name or "unnamed"))
    for op in trace.ops:
        stream.write(_format_op(op))
        stream.write("\n")


def dumps_trace(trace: Trace) -> str:
    """Serialize a trace to a string."""
    buffer = io.StringIO()
    dump_trace(trace, buffer)
    return buffer.getvalue()


def _format_op(op: Op) -> str:
    code = _KIND_TO_CODE[op.kind]
    if op.kind is OpKind.LOAD:
        return "%s 0x%x %d" % (code, op.address, op.length)
    if op.kind is OpKind.STORE:
        flag = "ca" if op.counter_atomic else "-"
        payload = op.data.hex() if op.data is not None else "-"
        return "%s 0x%x %d %s %s" % (code, op.address, op.length, flag, payload)
    if op.kind in (OpKind.CLWB, OpKind.CCWB):
        return "%s 0x%x" % (code, op.address)
    if op.kind is OpKind.COMPUTE:
        return "%s %g" % (code, op.duration_ns)
    if op.kind is OpKind.LABEL:
        return "%s %s" % (code, op.note.replace(" ", "_") or "-")
    if op.kind in (OpKind.TXN_BEGIN, OpKind.TXN_END):
        note = op.note.replace(" ", "_")
        return "%s %s" % (code, note) if note else code
    return code  # SFENCE


def load_trace(stream: Union[TextIO, Iterable[str]], name: str = "") -> Trace:
    """Parse a trace from the line format."""
    ops: List[Op] = []
    trace_name = name
    for line_number, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            if "trace:" in line and not trace_name:
                trace_name = line.split("trace:", 1)[1].strip()
            continue
        try:
            ops.append(_parse_line(line))
        except (ValueError, IndexError, KeyError) as exc:
            raise TraceError(
                "bad trace line %d: %r (%s)" % (line_number, line, exc)
            ) from exc
    return Trace(ops=ops, name=trace_name)


def loads_trace(text: str, name: str = "") -> Trace:
    """Parse a trace from a string."""
    return load_trace(io.StringIO(text), name=name)


def _parse_line(line: str) -> Op:
    fields = line.split()
    code = fields[0]
    kind = _CODE_TO_KIND.get(code)
    if kind is None:
        raise TraceError("unknown op code %r" % code)
    if kind is OpKind.LOAD:
        return Op(kind=kind, address=int(fields[1], 0), length=int(fields[2]))
    if kind is OpKind.STORE:
        address = int(fields[1], 0)
        length = int(fields[2])
        counter_atomic = fields[3] == "ca"
        data: Optional[bytes] = None
        if len(fields) > 4 and fields[4] != "-":
            data = bytes.fromhex(fields[4])
        return Op(
            kind=kind,
            address=address,
            length=length,
            data=data,
            counter_atomic=counter_atomic,
        )
    if kind in (OpKind.CLWB, OpKind.CCWB):
        return Op(kind=kind, address=int(fields[1], 0))
    if kind is OpKind.COMPUTE:
        return Op(kind=kind, duration_ns=float(fields[1]))
    if kind is OpKind.LABEL:
        note = fields[1].replace("_", " ") if len(fields) > 1 else ""
        return Op(kind=kind, note="" if note == "-" else note)
    if kind in (OpKind.TXN_BEGIN, OpKind.TXN_END):
        note = fields[1].replace("_", " ") if len(fields) > 1 else ""
        return Op(kind=kind, note=note)
    return Op(kind=kind)  # SFENCE


def save_traces(traces: Iterable[Trace], path: str) -> None:
    """Write several traces to one file, separated by ``=== core N``."""
    with open(path, "w", encoding="utf-8") as stream:
        for index, trace in enumerate(traces):
            stream.write("=== core %d\n" % index)
            dump_trace(trace, stream)


def load_traces(path: str) -> List[Trace]:
    """Read a multi-trace file written by :func:`save_traces`."""
    traces: List[Trace] = []
    current: List[str] = []
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            if line.startswith("=== core"):
                if current:
                    traces.append(load_trace(current))
                current = []
            else:
                current.append(line)
    if current:
        traces.append(load_trace(current))
    return traces
