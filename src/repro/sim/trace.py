"""Per-core operation traces and the builder used to author them.

A trace is the unit of work a simulated core executes.  Workloads and
the transactional layer *generate* traces; the machine *replays* them.
Keeping programs as data decouples workload logic from the simulator
and lets the same trace run unchanged under every design point, which
is exactly how the paper compares designs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence

from ..config import CACHE_LINE_SIZE
from ..errors import TraceError
from ..core.primitives import PersistentVar
from ..utils.bitops import u64_to_bytes


class OpKind(enum.Enum):
    LOAD = "load"
    STORE = "store"
    CLWB = "clwb"
    CCWB = "ccwb"  # counter_cache_writeback()
    SFENCE = "sfence"
    COMPUTE = "compute"
    TXN_BEGIN = "txn-begin"
    TXN_END = "txn-end"
    LABEL = "label"


@dataclass(frozen=True)
class Op:
    """One trace operation.

    * LOAD/STORE: ``address``/``length`` (and ``data`` when functional);
      STORE carries ``counter_atomic``.
    * CLWB/CCWB: ``address`` names the target line / counter group.
    * COMPUTE: ``duration_ns`` of non-memory work.
    * TXN_BEGIN/TXN_END/LABEL: markers for statistics and crash tooling.
    """

    kind: OpKind
    address: int = 0
    length: int = 8
    data: Optional[bytes] = None
    counter_atomic: bool = False
    duration_ns: float = 0.0
    note: str = ""

    def __post_init__(self) -> None:
        if self.kind in (OpKind.LOAD, OpKind.STORE):
            if self.length <= 0 or self.length > CACHE_LINE_SIZE:
                raise TraceError("memory op length %d out of range" % self.length)
            if self.data is not None and len(self.data) != self.length:
                raise TraceError("op data length disagrees with length field")
        if self.kind is OpKind.COMPUTE and self.duration_ns < 0:
            raise TraceError("compute duration cannot be negative")


@dataclass
class Trace:
    """An ordered list of operations for one core."""

    ops: List[Op] = field(default_factory=list)
    name: str = ""

    def __iter__(self) -> Iterator[Op]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def counts(self) -> dict:
        """Operation histogram (diagnostics and tests)."""
        histogram: dict = {}
        for op in self.ops:
            histogram[op.kind] = histogram.get(op.kind, 0) + 1
        return histogram

    def transactions(self) -> int:
        return sum(1 for op in self.ops if op.kind is OpKind.TXN_END)


class TraceBuilder:
    """Fluent builder for traces, mirroring the paper's primitives.

    The builder also maintains a *plaintext shadow* of everything the
    program wrote, so tests can compare the simulated NVM image against
    the intended memory contents.
    """

    def __init__(self, name: str = "", functional: bool = True) -> None:
        self.trace = Trace(name=name)
        self.functional = functional
        #: Shadow of program-visible memory: address -> byte (sparse).
        self.shadow: dict = {}

    # -- raw memory ops --------------------------------------------------

    def load(self, address: int, length: int = 8) -> "TraceBuilder":
        self.trace.ops.append(Op(kind=OpKind.LOAD, address=address, length=length))
        return self

    def store(
        self,
        address: int,
        data: Optional[bytes] = None,
        length: int = 8,
        counter_atomic: bool = False,
    ) -> "TraceBuilder":
        if data is not None:
            length = len(data)
            if self.functional:
                for offset, byte in enumerate(data):
                    self.shadow[address + offset] = byte
        self.trace.ops.append(
            Op(
                kind=OpKind.STORE,
                address=address,
                length=length,
                data=data if self.functional else None,
                counter_atomic=counter_atomic,
            )
        )
        return self

    def store_u64(
        self, address: int, value: int, counter_atomic: bool = False
    ) -> "TraceBuilder":
        return self.store(address, u64_to_bytes(value), counter_atomic=counter_atomic)

    def store_var(self, var: PersistentVar, value: int) -> "TraceBuilder":
        """Store through a :class:`PersistentVar` descriptor.

        The variable's ``CounterAtomic`` annotation travels with the
        store, exactly as the paper's type qualifier would.
        """
        return self.store_u64(var.address, value, counter_atomic=var.counter_atomic)

    def load_var(self, var: PersistentVar) -> "TraceBuilder":
        return self.load(var.address, 8)

    # -- persistency primitives ---------------------------------------------

    def clwb(self, address: int) -> "TraceBuilder":
        self.trace.ops.append(Op(kind=OpKind.CLWB, address=address))
        return self

    def clwb_span(self, address: int, length: int) -> "TraceBuilder":
        """clwb every line overlapped by [address, address+length)."""
        first = address - (address % CACHE_LINE_SIZE)
        last = (address + length - 1) - ((address + length - 1) % CACHE_LINE_SIZE)
        for line in range(first, last + 1, CACHE_LINE_SIZE):
            self.clwb(line)
        return self

    def ccwb(self, address: int) -> "TraceBuilder":
        """counter_cache_writeback() for the counter line covering ``address``."""
        self.trace.ops.append(Op(kind=OpKind.CCWB, address=address))
        return self

    def ccwb_span(self, address: int, length: int) -> "TraceBuilder":
        """ccwb every counter group overlapped by the byte range."""
        group_span = CACHE_LINE_SIZE * 8
        first = address - (address % group_span)
        last = (address + length - 1) - ((address + length - 1) % group_span)
        for group in range(first, last + 1, group_span):
            self.ccwb(group)
        return self

    def sfence(self) -> "TraceBuilder":
        self.trace.ops.append(Op(kind=OpKind.SFENCE))
        return self

    def persist_barrier(self) -> "TraceBuilder":
        """The paper's persist_barrier: order all prior writebacks."""
        return self.sfence()

    # -- structure markers -------------------------------------------------------

    def compute(self, duration_ns: float) -> "TraceBuilder":
        self.trace.ops.append(Op(kind=OpKind.COMPUTE, duration_ns=duration_ns))
        return self

    def txn_begin(self, note: str = "") -> "TraceBuilder":
        self.trace.ops.append(Op(kind=OpKind.TXN_BEGIN, note=note))
        return self

    def txn_end(self, note: str = "") -> "TraceBuilder":
        self.trace.ops.append(Op(kind=OpKind.TXN_END, note=note))
        return self

    def label(self, note: str) -> "TraceBuilder":
        self.trace.ops.append(Op(kind=OpKind.LABEL, note=note))
        return self

    # -- results ---------------------------------------------------------------------

    def build(self) -> Trace:
        return self.trace

    def shadow_bytes(self, address: int, length: int) -> bytes:
        """The program's intended memory contents for a byte range."""
        return bytes(self.shadow.get(address + i, 0) for i in range(length))


def persist_barrier(builder: TraceBuilder) -> TraceBuilder:
    """Free-function alias matching the paper's pseudocode style."""
    return builder.persist_barrier()


def merge_round_robin(traces: Sequence[Trace]) -> Trace:
    """Interleave several traces op-by-op (diagnostic tool)."""
    merged = Trace(name="+".join(t.name for t in traces))
    iterators = [iter(t.ops) for t in traces]
    active = list(iterators)
    while active:
        still_active = []
        for iterator in active:
            try:
                merged.ops.append(next(iterator))
                still_active.append(iterator)
            except StopIteration:
                pass
        active = still_active
    return merged
