"""Simulation statistics: per-core and machine-wide aggregates."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class CoreStats:
    """Accounting for one simulated core."""

    core_id: int
    ops_executed: int = 0
    loads: int = 0
    stores: int = 0
    ca_stores: int = 0
    clwbs: int = 0
    ccwbs: int = 0
    fences: int = 0
    transactions: int = 0
    finish_ns: float = 0.0
    fence_stall_ns: float = 0.0
    load_stall_ns: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "ops": self.ops_executed,
            "loads": self.loads,
            "stores": self.stores,
            "ca_stores": self.ca_stores,
            "clwbs": self.clwbs,
            "ccwbs": self.ccwbs,
            "fences": self.fences,
            "transactions": self.transactions,
            "finish_ns": self.finish_ns,
            "fence_stall_ns": self.fence_stall_ns,
            "load_stall_ns": self.load_stall_ns,
        }


@dataclass
class MachineStats:
    """Machine-wide results of one simulation run."""

    design: str
    num_cores: int
    runtime_ns: float
    per_core: List[CoreStats]
    bytes_written: int
    bytes_read: int
    transactions: int
    counter_cache_miss_rate: Optional[float]
    data_wq_peak: int
    counter_wq_peak: int
    coalesced_data_writes: int
    coalesced_counter_writes: int
    paired_writes: int
    mean_read_latency_ns: float
    # Bonsai-tree designs only; defaulted so stats dicts from runs that
    # predate the integrity subsystem still round-trip.
    tree_node_writes: int = 0
    coalesced_tree_writes: int = 0
    tree_verifications: int = 0
    tree_node_fills: int = 0
    root_updates: int = 0
    ccwb_tree_flushes: int = 0
    tree_wq_peak: int = 0

    @property
    def throughput_txn_per_s(self) -> float:
        """Transactions per second (the paper's Figure 13 metric)."""
        if self.runtime_ns <= 0:
            return 0.0
        return self.transactions / (self.runtime_ns * 1e-9)

    def normalized_runtime(self, baseline: "MachineStats") -> float:
        """Runtime relative to a baseline run (Figure 12 metric)."""
        if baseline.runtime_ns <= 0:
            raise ValueError("baseline runtime must be positive")
        return self.runtime_ns / baseline.runtime_ns

    def normalized_write_traffic(self, baseline: "MachineStats") -> float:
        """Bytes written relative to a baseline run (Figure 14 metric)."""
        if baseline.bytes_written <= 0:
            raise ValueError("baseline wrote no bytes")
        return self.bytes_written / baseline.bytes_written

    def normalized_throughput(self, baseline: "MachineStats") -> float:
        """Throughput relative to a baseline run (Figure 13 metric)."""
        base = baseline.throughput_txn_per_s
        if base <= 0:
            raise ValueError("baseline throughput must be positive")
        return self.throughput_txn_per_s / base

    def summary(self) -> Dict[str, float]:
        return {
            "design": self.design,
            "cores": self.num_cores,
            "runtime_ns": self.runtime_ns,
            "transactions": self.transactions,
            "throughput_txn_per_s": self.throughput_txn_per_s,
            "bytes_written": self.bytes_written,
            "bytes_read": self.bytes_read,
            "counter_cache_miss_rate": self.counter_cache_miss_rate,
            "paired_writes": self.paired_writes,
        }
