"""The machine: cores + caches + memory controller, replaying traces.

Scheduling: each core is a cursor into its trace with a local clock.
The machine repeatedly picks the core with the earliest clock and
executes its next operation, so shared-resource contention (L2, write
queues, banks, bus) is resolved in global time order.  This is the
standard conservative discrete-event discipline at operation
granularity — sufficient because every inter-core interaction in this
model happens through timestamped shared resources.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from typing import Union

from ..config import SystemConfig
from ..core.designs import DesignPolicy, get_design, sharded_design_name
from ..errors import SimulationError, TraceError
from ..mem.controller import MemoryController
from ..mem.hierarchy import CacheHierarchy
from ..mem.sharded import ShardedMemorySystem
from ..persist.model import PersistencyTracker
from .stats import CoreStats, MachineStats
from .trace import Op, OpKind, Trace

#: What the machine drives: the singleton controller (``shards == 1``,
#: the exact pre-sharding fast path) or the N-way sharded coordinator
#: presenting the same surface (:mod:`repro.mem.sharded`).
MemorySystem = Union[MemoryController, ShardedMemorySystem]


@dataclass
class SimulationResult:
    """Everything a finished run exposes to experiments and checkers."""

    stats: MachineStats
    controller: MemorySystem
    hierarchy: CacheHierarchy
    config: SystemConfig
    policy: DesignPolicy
    #: Per-core list of txn_end completion times (after the commit
    #: barrier) — validators use these for commit-durability checks.
    txn_end_times: List[List[float]] = field(default_factory=list)

    @property
    def journal(self):
        return self.controller.journal


class _CoreState:
    """Execution cursor of one core."""

    __slots__ = ("core_id", "trace", "index", "clock_ns", "tracker", "stats")

    def __init__(self, core_id: int, trace: Trace) -> None:
        self.core_id = core_id
        self.trace = trace
        self.index = 0
        self.clock_ns = 0.0
        self.tracker = PersistencyTracker()
        self.stats = CoreStats(core_id=core_id)

    @property
    def done(self) -> bool:
        return self.index >= len(self.trace.ops)


#: Integer dispatch codes for the inlined fast loop
#: (:meth:`Machine._run_single`), cached per trace as ``trace._op_codes``.
_OP_CODE = {
    OpKind.LOAD: 0,
    OpKind.STORE: 1,
    OpKind.CLWB: 2,
    OpKind.CCWB: 3,
    OpKind.SFENCE: 4,
    OpKind.COMPUTE: 5,
    OpKind.TXN_BEGIN: 6,
    OpKind.TXN_END: 7,
    OpKind.LABEL: 8,
}


class Machine:
    """A complete simulated system under one design point."""

    def __init__(self, config: SystemConfig, design: str | DesignPolicy) -> None:
        self.config = config
        self.policy = get_design(design) if isinstance(design, str) else design
        # shards == 1 keeps the exact singleton-controller path — the
        # sharded coordinator only exists when there is real fan-out.
        self.controller: MemorySystem
        if config.shards == 1:
            self.controller = MemoryController(config, self.policy)
        else:
            self.controller = ShardedMemorySystem(config, self.policy)
        self.hierarchy = CacheHierarchy(config, self.controller)
        self._txn_end_times: List[List[float]] = []
        self._cores: Optional[List[_CoreState]] = None
        self._pending: List[_CoreState] = []
        self.events_executed = 0

    # ------------------------------------------------------------------

    def begin(self, traces: Sequence[Trace]) -> None:
        """Install traces and arm the event loop without running it.

        ``begin`` / ``step`` / ``finish`` decompose :meth:`run` so a
        checkpointing harness can pause the simulation at an event
        boundary; ``run`` remains the one-shot path.
        """
        if len(traces) > self.config.num_cores:
            raise TraceError(
                "%d traces but only %d cores" % (len(traces), self.config.num_cores)
            )
        self._cores = [_CoreState(i, trace) for i, trace in enumerate(traces)]
        self._txn_end_times = [[] for _ in traces]
        self._pending = [c for c in self._cores if not c.done]
        self.events_executed = 0

    def step(self) -> bool:
        """Execute one event; returns True while more events remain."""
        pending = self._pending
        if not pending:
            return False
        # Conservative order: always advance the earliest core.
        core = min(pending, key=lambda c: c.clock_ns)
        self._step(core)
        self.events_executed += 1
        if core.done:
            core.stats.finish_ns = core.clock_ns
            self._pending = [c for c in self._cores if not c.done]
        return bool(self._pending)

    def finish(self) -> SimulationResult:
        """Assemble the result once :meth:`step` has drained all events."""
        if self._cores is None:
            raise SimulationError("finish() called before begin()")
        return self._finish(self._cores)

    def run(self, traces: Sequence[Trace]) -> SimulationResult:
        """Replay one trace per core to completion."""
        self.begin(traces)
        self.fast_forward()
        return self.finish()

    def fast_forward(self) -> None:
        """Drain all remaining events as fast as possible.

        Equivalent to ``while self.step(): pass`` — same stats, same
        timing, same errors — but whenever exactly one core remains
        pending the inlined single-core loop (:meth:`_run_single`)
        takes over and skips the per-event scheduling, dispatch and
        wrapper allocations.  Multi-core phases fall back to
        :meth:`step` for the conservative global-time ordering.
        """
        if self._cores is None:
            raise SimulationError("fast_forward() called before begin()")
        while self._pending:
            if len(self._pending) == 1:
                self._run_single(self._pending[0])
            else:
                self.step()

    def run_events(self, budget: int) -> bool:
        """Execute up to ``budget`` events; True while more remain.

        The chunked counterpart of :meth:`step` for checkpointing
        harnesses: a chunk lands on exactly the same event boundary as
        ``budget`` individual ``step()`` calls, with single-core chunks
        taking the fast loop.
        """
        while budget > 0:
            pending = self._pending
            if not pending:
                return False
            if len(pending) == 1:
                budget -= self._run_single(pending[0], budget)
            else:
                self.step()
                budget -= 1
        return bool(self._pending)

    def _run_single(self, core: _CoreState, budget: Optional[int] = None) -> int:
        """Inlined event loop for a lone pending core; returns events run.

        Bit-identical to repeated :meth:`step` calls on a one-core
        machine: the handlers are unrolled into one dispatch on
        precomputed op codes, per-op counters accumulate in locals, and
        L1-resident loads/stores take the hierarchy's ``*_complete``
        fast paths.  All bookkeeping is written back in a ``finally``
        so a mid-loop simulation error leaves the same state as the
        stepped path.
        """
        trace = core.trace
        ops = trace.ops
        codes = getattr(trace, "_op_codes", None)
        if codes is None:
            op_code = _OP_CODE
            codes = [op_code[op.kind] for op in ops]
            trace._op_codes = codes
        start = index = core.index
        end = len(ops)
        if budget is not None and index + budget < end:
            end = index + budget
        clock = core.clock_ns
        overhead = self.config.core.op_overhead_ns
        l1_hit = self.config.l1.hit_latency_ns
        core_id = core.core_id
        hierarchy = self.hierarchy
        load_complete = hierarchy.load_complete
        store_complete = hierarchy.store_complete
        clwb = hierarchy.clwb
        ccwb = self.controller.counter_cache_writeback
        # Cross-shard commit barrier (None on the singleton controller).
        note_commit = getattr(self.controller, "note_txn_commit", None)
        tracker = core.tracker
        note_writeback = tracker.note_writeback
        fence = tracker.fence
        txn_ends = self._txn_end_times[core_id]
        stats = core.stats
        loads = stats.loads
        stores = stats.stores
        ca_stores = stats.ca_stores
        clwbs = stats.clwbs
        ccwbs = stats.ccwbs
        fences = stats.fences
        transactions = stats.transactions
        load_stall = stats.load_stall_ns
        fence_stall = stats.fence_stall_ns
        completed = 0
        try:
            while index < end:
                op = ops[index]
                code = codes[index]
                index += 1
                now = clock + overhead
                if code == 0:  # LOAD
                    loads += 1
                    complete = load_complete(core_id, op.address, op.length, now)
                    load_stall += complete - now
                    clock = complete
                elif code == 1:  # STORE
                    stores += 1
                    if op.counter_atomic:
                        ca_stores += 1
                    clock = store_complete(
                        core_id, op.address, op.data, op.length, now, op.counter_atomic
                    )
                elif code == 5:  # COMPUTE
                    clock = now + op.duration_ns
                elif code == 2:  # CLWB
                    clwbs += 1
                    accept = clwb(core_id, op.address, now)
                    if accept is not None:
                        note_writeback(accept)
                    clock = now + l1_hit
                elif code == 4:  # SFENCE
                    fences += 1
                    release = fence(now)
                    fence_stall += release - now
                    clock = release
                elif code == 7:  # TXN_END
                    transactions += 1
                    txn_ends.append(now)
                    if note_commit is not None:
                        note_commit(core_id, now)
                    clock = now
                elif code == 3:  # CCWB
                    ccwbs += 1
                    ticket = ccwb(op.address, now)
                    if ticket is not None:
                        note_writeback(ticket.accept_ns)
                    clock = now + l1_hit
                else:  # TXN_BEGIN, LABEL
                    clock = now
                completed += 1
        finally:
            core.index = index
            core.clock_ns = clock
            stats.loads = loads
            stats.stores = stores
            stats.ca_stores = ca_stores
            stats.clwbs = clwbs
            stats.ccwbs = ccwbs
            stats.fences = fences
            stats.transactions = transactions
            stats.load_stall_ns = load_stall
            stats.fence_stall_ns = fence_stall
            # Mirrors the stepped path under errors: the failing op is
            # counted as executed (index advanced before the handler)
            # but not as a completed event.
            stats.ops_executed += index - start
            self.events_executed += completed
        if index >= len(ops):
            stats.finish_ns = clock
            self._pending = [c for c in self._cores if not c.done]
        return completed

    def _step(self, core: _CoreState) -> None:
        op = core.trace.ops[core.index]
        core.index += 1
        core.stats.ops_executed += 1
        now = core.clock_ns + self.config.core.op_overhead_ns
        handler = self._HANDLERS[op.kind]
        core.clock_ns = handler(self, core, op, now)

    # -- op handlers -------------------------------------------------------

    def _op_load(self, core: _CoreState, op: Op, now: float) -> float:
        core.stats.loads += 1
        access = self.hierarchy.load(core.core_id, op.address, op.length, now)
        core.stats.load_stall_ns += access.complete_ns - now
        return access.complete_ns

    def _op_store(self, core: _CoreState, op: Op, now: float) -> float:
        core.stats.stores += 1
        if op.counter_atomic:
            core.stats.ca_stores += 1
        access = self.hierarchy.store(
            core.core_id,
            op.address,
            op.data,
            op.length,
            now,
            counter_atomic=op.counter_atomic,
        )
        return access.complete_ns

    def _op_clwb(self, core: _CoreState, op: Op, now: float) -> float:
        core.stats.clwbs += 1
        accept = self.hierarchy.clwb(core.core_id, op.address, now)
        if accept is not None:
            core.tracker.note_writeback(accept)
        return now + self.config.l1.hit_latency_ns

    def _op_ccwb(self, core: _CoreState, op: Op, now: float) -> float:
        core.stats.ccwbs += 1
        ticket = self.controller.counter_cache_writeback(op.address, now)
        if ticket is not None:
            core.tracker.note_writeback(ticket.accept_ns)
        return now + self.config.l1.hit_latency_ns

    def _op_sfence(self, core: _CoreState, op: Op, now: float) -> float:
        core.stats.fences += 1
        release = core.tracker.fence(now)
        core.stats.fence_stall_ns += release - now
        return release

    def _op_compute(self, core: _CoreState, op: Op, now: float) -> float:
        return now + op.duration_ns

    def _op_txn_begin(self, core: _CoreState, op: Op, now: float) -> float:
        return now

    def _op_txn_end(self, core: _CoreState, op: Op, now: float) -> float:
        core.stats.transactions += 1
        self._txn_end_times[core.core_id].append(now)
        note_commit = getattr(self.controller, "note_txn_commit", None)
        if note_commit is not None:
            note_commit(core.core_id, now)
        return now

    def _op_label(self, core: _CoreState, op: Op, now: float) -> float:
        return now

    _HANDLERS = {
        OpKind.LOAD: _op_load,
        OpKind.STORE: _op_store,
        OpKind.CLWB: _op_clwb,
        OpKind.CCWB: _op_ccwb,
        OpKind.SFENCE: _op_sfence,
        OpKind.COMPUTE: _op_compute,
        OpKind.TXN_BEGIN: _op_txn_begin,
        OpKind.TXN_END: _op_txn_end,
        OpKind.LABEL: _op_label,
    }

    # -- result assembly -----------------------------------------------------

    def _finish(self, cores: List[_CoreState]) -> SimulationResult:
        runtime = max((c.clock_ns for c in cores), default=0.0)
        cc_stats = self.controller.counter_cache_stats
        # One folded snapshot — on a sharded system every ``.stats``
        # access re-merges the per-shard counters.
        cstats = self.controller.stats
        stats = MachineStats(
            design=sharded_design_name(self.policy.name, self.config.shards),
            num_cores=self.config.num_cores,
            runtime_ns=runtime,
            per_core=[c.stats for c in cores],
            bytes_written=cstats.bytes_written,
            bytes_read=cstats.bytes_read,
            transactions=sum(c.stats.transactions for c in cores),
            counter_cache_miss_rate=cc_stats.miss_rate if cc_stats else None,
            data_wq_peak=self.controller.data_queue.peak_occupancy,
            counter_wq_peak=self.controller.counter_queue.peak_occupancy,
            coalesced_data_writes=cstats.coalesced_data_writes,
            coalesced_counter_writes=cstats.coalesced_counter_writes,
            paired_writes=cstats.paired_writes,
            mean_read_latency_ns=cstats.mean_read_latency_ns,
            tree_node_writes=cstats.tree_node_writes,
            coalesced_tree_writes=cstats.coalesced_tree_writes,
            tree_verifications=cstats.tree_verifications,
            tree_node_fills=cstats.tree_node_fills,
            root_updates=cstats.root_updates,
            ccwb_tree_flushes=cstats.ccwb_tree_flushes,
            tree_wq_peak=(
                self.controller.tree_queue.peak_occupancy
                if self.controller.tree_queue is not None
                else 0
            ),
        )
        return SimulationResult(
            stats=stats,
            controller=self.controller,
            hierarchy=self.hierarchy,
            config=self.config,
            policy=self.policy,
            txn_end_times=self._txn_end_times,
        )

    # -- checkpoint state -----------------------------------------------------

    def get_state(self) -> dict:
        """Complete machine state at an event boundary.

        Self-contained: carries config, policy, and the traces, so
        :meth:`from_state` can rebuild an identical machine with no
        other inputs.  Resuming and running to completion produces a
        bit-identical result to the uninterrupted run.
        """
        if self._cores is None:
            raise SimulationError("get_state() called before begin()")
        return {
            "config": self.config,
            "policy": self.policy,
            "events": self.events_executed,
            "txn_end_times": [list(times) for times in self._txn_end_times],
            "cores": [
                {
                    "core_id": core.core_id,
                    "trace": core.trace,
                    "index": core.index,
                    "clock_ns": core.clock_ns,
                    "tracker": core.tracker.get_state(),
                    "stats": dataclasses.asdict(core.stats),
                }
                for core in self._cores
            ],
            "controller": self.controller.get_state(),
            "hierarchy": self.hierarchy.get_state(),
        }

    def set_state(self, state: dict) -> None:
        """Restore a state captured by :meth:`get_state`.

        The machine must have been built from the same config and
        design; structural objects are reused, mutable state replaced.
        """
        cores: List[_CoreState] = []
        for stored in state["cores"]:
            core = _CoreState(stored["core_id"], stored["trace"])
            core.index = stored["index"]
            core.clock_ns = stored["clock_ns"]
            core.tracker.set_state(stored["tracker"])
            core.stats = CoreStats(**stored["stats"])
            cores.append(core)
        self._cores = cores
        self._pending = [c for c in cores if not c.done]
        self.events_executed = state["events"]
        self._txn_end_times = [list(times) for times in state["txn_end_times"]]
        self.controller.set_state(state["controller"])
        self.hierarchy.set_state(state["hierarchy"])

    @classmethod
    def from_state(cls, state: dict) -> "Machine":
        """Rebuild a machine purely from a :meth:`get_state` capture."""
        machine = cls(state["config"], state["policy"])
        machine.set_state(state)
        return machine


def run_design(
    config: SystemConfig, design: str | DesignPolicy, traces: Sequence[Trace]
) -> SimulationResult:
    """One-shot helper: build a machine and run the traces."""
    return Machine(config, design).run(traces)
