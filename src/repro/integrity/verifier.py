"""Post-crash integrity verification and repair over crash images.

Recovery with a Bonsai Merkle Tree has two independent checks:

* **Root walk** — rebuild the tree root from the *persisted* counters
  (:meth:`IntegrityTreeEngine.root_over`) and compare it to the secure
  register captured at the crash.  Any counter-region corruption —
  torn counter lines, counter bit-flips, ADR entries that were dropped
  after the register covered them — moves the computed root.
* **Tag sweep** — re-verify each data line's ECC-lane MAC against the
  line's persisted ciphertext and its architectural counter.  Data
  corruption (torn or flipped lines) and stale counters both fail the
  tag even when the counter region itself hashes clean.

Both checks use only post-crash-visible state (the image, the register,
the persisted tags) — no simulator ground truth — so a passing
verification is exactly what real recovery firmware could conclude.

Repair is Phoenix + Osiris: search each failing line's counter
neighborhood until its tag verifies (:mod:`repro.crash.counter_recovery`),
then rebuild the tree over the recovered counters and reseal the root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from ..config import SystemConfig
from ..crash.counter_recovery import CounterRecoverer, CounterRecoveryReport
from ..crash.injector import CrashImage
from ..crypto.integrity import IntegrityEngine, TaggedLine
from .tree import IntegrityTreeEngine

if TYPE_CHECKING:  # pragma: no cover - typing only (session imports us)
    from ..crash.session import RecoveryContext

__all__ = ["TreeVerificationReport", "repair_image", "verify_image"]


@dataclass
class TreeVerificationReport:
    """Outcome of one post-crash verification walk."""

    design: str
    crash_ns: float
    #: The secure register at the crash; None when the image predates
    #: integrity capture (verification then only runs the tag sweep).
    root_expected: Optional[int]
    #: Root rebuilt from the image's persisted counters.
    root_computed: int
    #: Data lines whose ECC-lane MAC verifies under *no* counter in the
    #: Osiris search window — genuine corruption.
    tag_failures: List[int] = field(default_factory=list)
    #: Lines whose MAC failed the architectural counter but verified at
    #: a forward lag: legitimate in-flight state (data persisted before
    #: its counter writeback), repairable by counter search.
    stale_lines: int = 0
    lines_checked: int = 0

    @property
    def root_match(self) -> bool:
        return self.root_expected is None or self.root_expected == self.root_computed

    @property
    def clean(self) -> bool:
        return self.root_match and not self.tag_failures

    def describe(self) -> str:
        if self.clean:
            return "tree verification clean (%d lines)" % self.lines_checked
        parts = []
        if not self.root_match:
            parts.append(
                "root mismatch (register %016x != computed %016x)"
                % (self.root_expected, self.root_computed)
            )
        if self.tag_failures:
            parts.append(
                "%d tag failure(s) at %s"
                % (
                    len(self.tag_failures),
                    ", ".join("0x%x" % a for a in self.tag_failures[:4])
                    + ("..." if len(self.tag_failures) > 4 else ""),
                )
            )
        return "; ".join(parts)


def _tree_engine(image: CrashImage, config: SystemConfig) -> IntegrityTreeEngine:
    return IntegrityTreeEngine(
        config.encryption, image.address_map, arity=config.integrity.arity
    )


def verify_image(
    image: CrashImage, config: SystemConfig, max_lag: Optional[int] = None
) -> TreeVerificationReport:
    """Run the root walk and the tag sweep over a crash image.

    Consumes the integrity capture the injector stores on the image
    (``secure_root``, ``line_tags``); faults mutate the image *after*
    capture, so any mutation surfaces as a mismatch here.

    The tag sweep mirrors Osiris semantics: a line whose MAC fails the
    architectural counter but verifies at a forward lag (within
    ``max_lag``) is legitimate in-flight state — SCA lets non-atomic
    data drain before its counter writeback — and counts as *stale*,
    not corrupt.  Only a line no candidate counter can authenticate is
    a tag failure.
    """
    if max_lag is None:
        max_lag = config.integrity.max_counter_lag
    engine = _tree_engine(image, config)
    report = TreeVerificationReport(
        design=image.design,
        crash_ns=image.crash_ns,
        root_expected=image.secure_root,
        root_computed=engine.root_over(image.counter_store.snapshot()),
    )
    tags = image.line_tags or {}
    mac = IntegrityEngine(config.encryption)
    for address in sorted(tags):
        if not image.address_map.is_data_address(address):
            continue
        stored = image.device.read_line(address)
        architectural = image.counter_store.read(address)
        report.lines_checked += 1
        if mac.verify(address, architectural, stored.payload, tags[address]):
            continue
        line = TaggedLine(address=address, ciphertext=stored.payload, tag=tags[address])
        if any(
            line.verify_with(mac, architectural + lag)
            for lag in range(1, max_lag + 1)
        ):
            report.stale_lines += 1
        else:
            report.tag_failures.append(address)
    return report


def repair_image(
    image: CrashImage,
    config: SystemConfig,
    max_lag: Optional[int] = None,
    context: Optional["RecoveryContext"] = None,
) -> Tuple[CounterRecoveryReport, TreeVerificationReport]:
    """Osiris counter search + Phoenix root reseal, in place.

    Searches each tagged line's counter neighborhood until its MAC
    verifies (bounded by ``max_lag``), writes recovered counters back
    into the image, then recomputes the tree over the repaired
    counters and installs the new root in the image's register —
    recovery *reseals* the tree rather than proving the old root.

    Returns the recovery report and the post-repair verification
    (clean iff every tagged line now decrypts consistently).

    Restartable in two phases: the counter sweep steps per line under
    the ``counter-search`` phase (inside :meth:`recover_image`), then
    the reseal is one ``tree-repair`` step.  Both mutate the image in
    place with crash-atomic writes, so re-running after a nested crash
    resumes from the repaired state; an interrupted reseal just
    recomputes the same root.
    """
    if max_lag is None:
        max_lag = config.integrity.max_counter_lag
    if context is None:
        from ..crash.session import RecoveryContext

        context = RecoveryContext()
    context.enter_phase("tree-repair")
    recoverer = CounterRecoverer(config.encryption, max_lag=max_lag)
    recovery = recoverer.recover_image(image, tags=image.line_tags, context=context)
    context.enter_phase("tree-repair")
    context.step()
    engine = _tree_engine(image, config)
    image.secure_root = engine.root_over(image.counter_store.snapshot())
    context.step()
    return recovery, verify_image(image, config)
