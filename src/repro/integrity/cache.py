"""The on-chip tree-node cache.

Every counter-line update re-hashes its leaf-to-root path; persisting
all of those nodes eagerly is the Freij-style discipline the FCA+bmt
design models.  The lazy mode instead coalesces dirty path nodes in
this cache — repeated updates to a hot subtree dirty the same few
nodes — and flushes them at ``counter_cache_writeback()`` and on
eviction, mirroring SCA's counter relaxation.

The cache is fully associative with true LRU (tree working sets are a
handful of paths, far below set-conflict scale) and, like the counter
cache, *volatile*: its contents vanish at power loss, which is safe
because interior nodes are reconstructible from persisted counters.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError

__all__ = ["TreeNodeCache"]

#: ``(level, index)`` — see :mod:`repro.integrity.tree`.
TreeNode = Tuple[int, int]


class TreeNodeCache:
    """Fully associative LRU cache of Merkle-tree nodes with dirty bits."""

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ConfigurationError("tree-node cache needs at least one entry")
        self.entries = entries
        # node -> dirty; dict order is LRU order (reinsert on touch).
        self._lines: Dict[TreeNode, bool] = {}

    def __len__(self) -> int:
        return len(self._lines)

    def contains(self, node: TreeNode) -> bool:
        return node in self._lines

    def dirty_count(self) -> int:
        return sum(1 for dirty in self._lines.values() if dirty)

    def touch(self, node: TreeNode, dirty: bool = False) -> bool:
        """Access a node; returns True on hit.  ``dirty`` marks it dirty."""
        if node not in self._lines:
            return False
        was_dirty = self._lines.pop(node)
        self._lines[node] = was_dirty or dirty
        return True

    def insert(self, node: TreeNode, dirty: bool) -> Optional[TreeNode]:
        """Install (or touch) a node.

        Returns the evicted node if a *dirty* victim had to make room —
        the caller owes NVM a writeback of its current digest.  Clean
        victims are dropped silently (reconstructible).
        """
        if self.touch(node, dirty):
            return None
        victim: Optional[TreeNode] = None
        if len(self._lines) >= self.entries:
            victim_node = next(iter(self._lines))
            if self._lines.pop(victim_node):
                victim = victim_node
        self._lines[node] = dirty
        return victim

    def clean(self, node: TreeNode) -> bool:
        """Mark a cached node clean; returns True if it was dirty.

        Does not touch recency — a writeback is not a reuse.
        """
        if not self._lines.get(node, False):
            return False
        self._lines[node] = False
        return True

    def flush_dirty(self) -> List[TreeNode]:
        """All dirty nodes, cleaned in place, in (level, index) order."""
        dirty = sorted(node for node, is_dirty in self._lines.items() if is_dirty)
        for node in dirty:
            self.clean(node)
        return dirty

    def invalidate_all(self) -> None:
        """Drop every entry: the cache's volatility at power loss."""
        self._lines.clear()

    # -- checkpoint state -----------------------------------------------------

    def get_state(self) -> Dict[str, object]:
        return {
            "lines": [
                (level, index, dirty)
                for (level, index), dirty in self._lines.items()
            ]
        }

    def set_state(self, state: Dict[str, object]) -> None:
        self._lines = {
            (level, index): dirty for level, index, dirty in state["lines"]
        }
