"""The Bonsai Merkle Tree over the counter region.

Geometry
--------

The tree authenticates the *counter store*, not the data region: with
per-line MACs riding in the ECC lanes (``repro.crypto.integrity``),
protecting the counters transitively protects the data, which is what
makes the Bonsai tree orders of magnitude smaller than a full-memory
tree.  One level-0 node digests one 64 B counter line (= the eight
counters of one data-line group); each interior node digests ``arity``
children; the root lives in a crash-safe secure register on the
controller, never in NVM.

Digests are single u64 values produced by a keyed SplitMix64 chain —
the same simulation-substitute trade as :mod:`repro.crypto.prf`: fast,
deterministic, input-sensitive, and explicitly **not** cryptographic.
Node indices are deliberately *not* absorbed into the digest, so every
untouched node at a level shares one precomputed default digest and
the tree can stay sparse (only touched paths are materialized).

Crash semantics
---------------

The engine is on-chip (volatile) working state; NVM persistence of
tree nodes is traffic/latency modeling handled by the memory
controller.  What survives a crash is (a) the secure root register and
(b) whatever counter lines persisted — interior nodes are always
reconstructible from the persisted leaves (:meth:`root_over`), the
Phoenix observation that makes tree-node writes journal-free.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Mapping, Tuple

from ..config import CACHE_LINE_SIZE, COUNTERS_PER_LINE, EncryptionConfig
from ..crypto.counter_cache import GROUP_SPAN
from ..crypto.prf import SplitMixPRF, _splitmix64
from ..errors import AddressError, ConfigurationError
from ..nvm.address import AddressMap
from ..utils.bitops import align_down, is_power_of_two

__all__ = ["IntegrityTreeEngine", "TreeNode", "derive_tree_key"]

#: A tree node is identified by ``(level, index)``: level 0 holds the
#: counter-line digests, the root sits alone at ``engine.levels``.
TreeNode = Tuple[int, int]

_TWO_U64 = struct.Struct("<QQ")

#: Domain-separation constants so a leaf digest can never collide with
#: an interior digest over the same values.
_LEAF_DOMAIN = 0x9D1B0F5B1E4C68A1
_NODE_DOMAIN = 0x6E2A9C47D3B185F3


def derive_tree_key(config: EncryptionConfig) -> int:
    """Derive an independent u64 tree-hash key from the encryption key."""
    mixer = SplitMixPRF(config.key)
    lo, hi = _TWO_U64.unpack(mixer.encrypt_block(b"bmt-tree-hash-ky"))
    return lo ^ hi


class IntegrityTreeEngine:
    """Sparse keyed hash tree over counter lines, with a secure root.

    ``update_group`` is the hot path: one counter-line change re-hashes
    only its leaf-to-root path (``levels`` digests).  ``root_over``
    rebuilds the root from scratch over a persisted counter mapping —
    the post-crash verification walk.
    """

    def __init__(
        self,
        encryption: EncryptionConfig,
        address_map: AddressMap,
        arity: int = COUNTERS_PER_LINE,
    ) -> None:
        if not is_power_of_two(arity) or arity < 2:
            raise ConfigurationError("tree arity must be a power of two >= 2")
        self.arity = arity
        self.counter_region_base = address_map.counter_region_base
        self.counter_region_bytes = address_map.counter_region_bytes
        #: One leaf per data-line group (= per counter line).
        self.num_leaves = max(
            1, -(-address_map.data_region_bytes // GROUP_SPAN)
        )
        levels = 1
        while arity ** levels < self.num_leaves:
            levels += 1
        #: Root level; persistable node levels are ``0 .. levels - 1``.
        self.levels = levels
        self._key = derive_tree_key(encryption)
        # Default digest of an untouched node, per level: level 0 is
        # the digest of eight zero counters, level L+1 the digest of
        # ``arity`` level-L defaults.  Uniform within a level because
        # indices are not absorbed.
        defaults = [self._chain(_LEAF_DOMAIN, (0,) * COUNTERS_PER_LINE)]
        for _ in range(levels):
            defaults.append(self._chain(_NODE_DOMAIN, (defaults[-1],) * arity))
        self._defaults = defaults
        self._nodes: Dict[TreeNode, int] = {}
        self._root = defaults[levels]

    # -- digest primitives ---------------------------------------------------

    def _chain(self, domain: int, values) -> int:
        state = _splitmix64(self._key ^ domain)
        for value in values:
            state = _splitmix64(state ^ value)
        return state

    def leaf_digest(self, counters: Tuple[int, ...]) -> int:
        """Digest of one counter line (eight counter values)."""
        if len(counters) != COUNTERS_PER_LINE:
            raise AddressError(
                "a tree leaf digests exactly %d counters" % COUNTERS_PER_LINE
            )
        return self._chain(_LEAF_DOMAIN, counters)

    def node_digest(self, node: TreeNode) -> int:
        """Current digest of a node (default if never touched)."""
        return self._nodes.get(node, self._defaults[node[0]])

    @property
    def root(self) -> int:
        """The secure register: root digest over the covered counters."""
        return self._root

    # -- incremental update (the runtime hot path) ---------------------------

    def leaf_index(self, group_base: int) -> int:
        """Leaf index covering the data-line group at ``group_base``."""
        if group_base % GROUP_SPAN != 0:
            raise AddressError("0x%x is not a group base" % group_base)
        index = group_base // GROUP_SPAN
        if index < 0 or index >= self.num_leaves:
            raise AddressError("group 0x%x outside the covered data region" % group_base)
        return index

    def update_group(
        self, group_base: int, counters: Tuple[int, ...]
    ) -> List[TreeNode]:
        """Re-hash the path for one changed counter line; update the root.

        Returns the *persistable* path nodes, leaf-to-top (levels
        ``0 .. levels - 1``).  The root is updated in the secure
        register and is never written to NVM, so it is not in the path.
        """
        index = self.leaf_index(group_base)
        digest = self.leaf_digest(counters)
        self._nodes[(0, index)] = digest
        path: List[TreeNode] = [(0, index)]
        nodes = self._nodes
        defaults = self._defaults
        arity = self.arity
        for level in range(1, self.levels + 1):
            index //= arity
            base = index * arity
            child_default = defaults[level - 1]
            digest = self._chain(
                _NODE_DOMAIN,
                [
                    nodes.get((level - 1, base + k), child_default)
                    for k in range(arity)
                ],
            )
            nodes[(level, index)] = digest
            if level < self.levels:
                path.append((level, index))
        self._root = digest
        return path

    def verify_leaf(self, group_base: int, counters: Tuple[int, ...]) -> bool:
        """Check a fetched counter line against the tree (runtime verify)."""
        node = (0, self.leaf_index(group_base))
        return self.leaf_digest(counters) == self.node_digest(node)

    # -- from-scratch rebuild (the post-crash walk) --------------------------

    def root_over(self, counters: Mapping[int, int]) -> int:
        """Root digest over a persisted counter mapping.

        ``counters`` maps data-line address -> counter value (the
        :meth:`repro.crypto.counters.CounterStore.snapshot` shape);
        absent lines implicitly hold 0.  The rebuild is sparse: only
        touched subtrees are hashed, everything else is a default.
        """
        groups: Dict[int, List[int]] = {}
        for line_address, value in counters.items():
            group = align_down(line_address, GROUP_SPAN)
            slot = (line_address // CACHE_LINE_SIZE) % COUNTERS_PER_LINE
            groups.setdefault(group, [0] * COUNTERS_PER_LINE)[slot] = value
        level_digests: Dict[int, int] = {}
        for group, values in groups.items():
            level_digests[self.leaf_index(group)] = self.leaf_digest(tuple(values))
        arity = self.arity
        for level in range(1, self.levels + 1):
            child_default = self._defaults[level - 1]
            parents: Dict[int, int] = {}
            for parent in {i // arity for i in level_digests}:
                base = parent * arity
                parents[parent] = self._chain(
                    _NODE_DOMAIN,
                    [
                        level_digests.get(base + k, child_default)
                        for k in range(arity)
                    ],
                )
            level_digests = parents
        return level_digests.get(0, self._defaults[self.levels])

    def rebuild(self, counters: Mapping[int, int]) -> int:
        """Reset the working tree to cover ``counters`` (Phoenix recovery).

        Drops all materialized nodes (they are lazily re-derived as
        defaults plus fresh updates) and reseals the root.
        """
        self._nodes.clear()
        for line_address, value in sorted(counters.items()):
            group = align_down(line_address, GROUP_SPAN)
            # Re-insert whole groups once; update_group digests all 8 slots.
            if (0, group // GROUP_SPAN) in self._nodes:
                continue
            values = [0] * COUNTERS_PER_LINE
            for slot in range(COUNTERS_PER_LINE):
                values[slot] = counters.get(group + slot * CACHE_LINE_SIZE, 0)
            self.update_group(group, tuple(values))
        return self._root

    # -- NVM placement --------------------------------------------------------

    def node_address(self, node: TreeNode) -> int:
        """Pseudo NVM address of a tree node, for bank scheduling only.

        Tree nodes notionally live alongside the counters; the exact
        placement only influences bank/row arithmetic in the timing
        model, so levels are packed densely and wrapped into the
        counter region.
        """
        level, index = node
        offset = 0
        capacity = self.arity ** self.levels
        for _ in range(level):
            offset += capacity
            capacity //= self.arity
        span = align_down(self.counter_region_bytes, CACHE_LINE_SIZE)
        return self.counter_region_base + ((offset + index) * CACHE_LINE_SIZE) % span

    # -- checkpoint state -----------------------------------------------------

    def get_state(self) -> Dict[str, object]:
        return {
            "nodes": [(level, index, digest) for (level, index), digest in self._nodes.items()],
            "root": self._root,
        }

    def set_state(self, state: Dict[str, object]) -> None:
        self._nodes = {
            (level, index): digest for level, index, digest in state["nodes"]
        }
        self._root = state["root"]
