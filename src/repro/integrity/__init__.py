"""Integrity-verified memory: a Bonsai Merkle Tree over the counters.

The paper's counter-atomicity keeps data and counters *consistent*
across crashes but gives the controller no way to *detect* when they
are not (a fault, a torn write, an exhausted ADR reserve).  Secure NVM
proposals close that hole with a Bonsai Merkle Tree (BMT): hash the
counter region up to a root held in a crash-safe secure register, and
verify counter fetches against it.

This package provides the tree substrate:

* :mod:`repro.integrity.tree` — the keyed hash tree itself
  (:class:`IntegrityTreeEngine`), leaves covering counter lines,
  sparse interior nodes, and an incremental leaf-to-root update path.
* :mod:`repro.integrity.cache` — :class:`TreeNodeCache`, the on-chip
  LRU cache of tree nodes with dirty bits (the lazy persistence mode
  coalesces dirty nodes here, mirroring SCA's counter relaxation).
* :mod:`repro.integrity.verifier` — post-crash verification and
  Phoenix-style repair over :class:`repro.crash.injector.CrashImage`.

The memory controller owns the runtime wiring (tree write queue,
eager/lazy persistence, verification on counter-cache fills); the
crash campaign owns the post-crash use (reclassifying would-be silent
corruption as detected-by-tree).
"""

from .cache import TreeNodeCache
from .tree import IntegrityTreeEngine, derive_tree_key

__all__ = [
    "IntegrityTreeEngine",
    "TreeNodeCache",
    "TreeVerificationReport",
    "derive_tree_key",
    "repair_image",
    "verify_image",
]

_VERIFIER_NAMES = ("TreeVerificationReport", "repair_image", "verify_image")


def __getattr__(name):
    # The verifier pulls in the crash layer (which itself imports the
    # memory controller, which imports the tree) — resolving it lazily
    # keeps ``from ..integrity.tree import ...`` cycle-free for the
    # controller while the package still re-exports the whole API.
    if name in _VERIFIER_NAMES:
        from . import verifier

        return getattr(verifier, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
