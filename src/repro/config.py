"""System configuration (paper Table 2).

Every experiment is parameterized by a :class:`SystemConfig`, a frozen
dataclass tree mirroring the evaluated system:

* out-of-order x86 cores at 4 GHz (we model the memory-op stream),
* private L1, shared L2,
* a shared 1 MB/core, 16-way counter cache,
* a memory controller with a 32-entry read queue, 64-entry data write
  queue and 16-entry counter write queue,
* an 8 GB PCM main memory behind a DDR3-533 interface, and
* a 40 ns AES en/decryption latency.

All times are in nanoseconds (floats); sizes are in bytes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional

from .errors import ConfigurationError

#: Bytes per cache line / memory access, fixed by the paper (64 B data,
#: 8 B counter, eight counters per counter line).
CACHE_LINE_SIZE = 64
COUNTER_SIZE = 8
COUNTERS_PER_LINE = CACHE_LINE_SIZE // COUNTER_SIZE

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CoreConfig:
    """Processor core parameters."""

    frequency_ghz: float = 4.0
    #: Fixed cost charged per trace operation for non-memory work; models
    #: the instructions between persistent-memory accesses.
    op_overhead_ns: float = 1.0

    def __post_init__(self) -> None:
        _require(self.frequency_ghz > 0, "core frequency must be positive")
        _require(self.op_overhead_ns >= 0, "op overhead cannot be negative")

    @property
    def cycle_ns(self) -> float:
        """Duration of one core clock cycle in nanoseconds."""
        return 1.0 / self.frequency_ghz


@dataclass(frozen=True)
class CacheConfig:
    """One set-associative cache level."""

    size_bytes: int
    ways: int
    hit_latency_ns: float
    line_size: int = CACHE_LINE_SIZE

    def __post_init__(self) -> None:
        _require(self.size_bytes > 0, "cache size must be positive")
        _require(self.ways > 0, "cache associativity must be positive")
        _require(self.hit_latency_ns >= 0, "hit latency cannot be negative")
        _require(
            self.size_bytes % (self.ways * self.line_size) == 0,
            "cache size must be a multiple of ways * line size",
        )
        _require(_is_power_of_two(self.num_sets), "number of sets must be a power of two")

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.ways


@dataclass(frozen=True)
class CounterCacheConfig(CacheConfig):
    """The on-chip counter cache (1 MB per core, 16-way in Table 2)."""

    size_bytes: int = 1 * MB
    ways: int = 16
    hit_latency_ns: float = 1.0


@dataclass(frozen=True)
class NVMTimingConfig:
    """PCM timing parameters (Table 2, from Lee et al. / Xu et al.).

    ``tRCD/tCL/tCWD/tFAW/tWTR/tWR = 48/15/13/50/7.5/300 ns``.
    """

    t_rcd_ns: float = 48.0
    t_cl_ns: float = 15.0
    t_cwd_ns: float = 13.0
    t_faw_ns: float = 50.0
    t_wtr_ns: float = 7.5
    t_wr_ns: float = 300.0
    #: DDR3 interface clock; 533 MHz, double data rate.
    bus_mhz: float = 533.0
    bus_width_bits: int = 64
    #: Concurrent array-access units (banks x per-bank partitions).
    #: Table 2 does not fix a bank count; PCM parts expose substantial
    #: intra-bank write parallelism (Lee et al., Xu et al.), and the
    #: long 300 ns write recovery only meets the paper's observed
    #: multicore scaling with a few tens of concurrent write units.
    num_banks: int = 32
    #: Multipliers for the Figure 17 latency sweeps.
    read_latency_scale: float = 1.0
    write_latency_scale: float = 1.0

    def __post_init__(self) -> None:
        for name in ("t_rcd_ns", "t_cl_ns", "t_cwd_ns", "t_faw_ns", "t_wtr_ns", "t_wr_ns"):
            _require(getattr(self, name) >= 0, "%s cannot be negative" % name)
        _require(self.bus_mhz > 0, "bus frequency must be positive")
        _require(self.bus_width_bits in (64, 72), "bus width must be 64 or 72 bits")
        _require(_is_power_of_two(self.num_banks), "bank count must be a power of two")
        _require(self.read_latency_scale > 0, "read latency scale must be positive")
        _require(self.write_latency_scale > 0, "write latency scale must be positive")

    @property
    def read_access_ns(self) -> float:
        """Array read time for one line (row activate + column read)."""
        return (self.t_rcd_ns + self.t_cl_ns) * self.read_latency_scale

    @property
    def write_access_ns(self) -> float:
        """Array write time for one line (column write + write recovery)."""
        return (self.t_cwd_ns + self.t_wr_ns) * self.write_latency_scale

    @property
    def beat_ns(self) -> float:
        """Duration of one bus beat (double data rate)."""
        return 1.0e3 / (2.0 * self.bus_mhz)

    def burst_ns(self, payload_bytes: int) -> float:
        """Bus occupancy to transfer ``payload_bytes``.

        A 64-bit bus moves 8 B per beat; the 72-bit co-located bus moves
        9 B per beat, so a 72 B data+counter line still takes 8 beats.
        """
        bytes_per_beat = self.bus_width_bits // 8
        beats = -(-payload_bytes // bytes_per_beat)  # ceil division
        return beats * self.beat_ns


@dataclass(frozen=True)
class MemoryControllerConfig:
    """Queue geometry of the memory controller (Table 2)."""

    read_queue_entries: int = 32
    data_write_queue_entries: int = 64
    counter_write_queue_entries: int = 16
    #: Merge repeated writes to the same line while queued.
    coalesce_writes: bool = True
    #: Drain policy: ``"ready-first"`` lets ready entries bypass unready
    #: ones (the paper's design); ``"fifo"`` models strict head-of-line
    #: blocking (ablation).
    drain_policy: str = "ready-first"
    #: How long the controller holds a counter-line entry in the counter
    #: write queue before draining it (opportunistic writeback).  Hot
    #: counter lines — the transaction record's line, the log area's
    #: lines — are rewritten every transaction; deferring their drain
    #: lets those updates coalesce in the queue, which is where the
    #: paper's counter-traffic savings come from (§6.3.3).  0 disables
    #: (the default): deferring drains lengthens counter-queue slot
    #: waits for paired writes, which costs more than the coalescing
    #: saves — kept as an ablation knob (benchmarks/test_ablations.py).
    counter_drain_hold_ns: float = 0.0
    #: Latency of the ready-bit handshake for a counter-atomic pair:
    #: both queues are CAM-searched for the partner entry and both
    #: ready bits updated under ADR protection (paper Section 5.2.2
    #: steps 5-7).  Charged on the pair's acceptance, i.e. on the
    #: commit barrier's critical path — this is the per-transaction
    #: cost that Figure 16 shows amortizing with transaction size.
    pair_ready_latency_ns: float = 30.0
    #: When set, the controller appends every :class:`MemoryEvent` as a
    #: JSON line to this path (see :mod:`repro.mem.events`) — the
    #: observability hook for campaign debugging and perf analysis.
    #: The trace is diagnostic output, not simulation state: it is not
    #: checkpointed and replays from a restored snapshot re-append.
    event_trace_path: Optional[str] = None
    #: How many trace lines to write between file flushes.  The default
    #: of 1 flushes per event (crash-durable trace prefix); raising it
    #: amortizes the flush so tracing doesn't serialize the batched
    #: event bus, at the cost of up to that many lost trailing lines
    #: after a crash.
    event_trace_flush_every: int = 1
    #: Record crash-reconstruction state (persist journal, device line
    #: images, wear map).  Timing-only figure sweeps that never inject
    #: crashes turn this off to skip the per-write bookkeeping; crash
    #: campaigns and checkpointing must leave it on.
    crash_bookkeeping: bool = True

    def __post_init__(self) -> None:
        _require(self.read_queue_entries > 0, "read queue must have entries")
        _require(self.data_write_queue_entries > 0, "data write queue must have entries")
        _require(self.counter_write_queue_entries > 0, "counter write queue must have entries")
        _require(
            self.drain_policy in ("ready-first", "fifo"),
            "drain policy must be 'ready-first' or 'fifo'",
        )
        _require(self.event_trace_flush_every >= 1, "trace flush cadence must be >= 1")


@dataclass(frozen=True)
class EncryptionConfig:
    """Encryption-engine parameters."""

    #: AES latency from Table 2 (Shi et al.).
    latency_ns: float = 40.0
    #: ``"prf"`` (fast keyed PRF) or ``"aes"`` (FIPS-197 AES-128); both
    #: are real OTP generators, AES is ~100x slower in pure Python.
    cipher: str = "prf"
    key: bytes = b"repro-hpca18-counter-mode-key!!!"[:16]

    def __post_init__(self) -> None:
        _require(self.latency_ns >= 0, "encryption latency cannot be negative")
        _require(self.cipher in ("prf", "aes"), "cipher must be 'prf' or 'aes'")
        _require(len(self.key) == 16, "key must be 16 bytes (AES-128)")


@dataclass(frozen=True)
class IntegrityConfig:
    """Bonsai Merkle Tree parameters (integrity-verified designs).

    The tree covers the counter region: leaves are 64 B counter lines
    (eight 8 B counters), interior nodes are 64 B blocks of ``arity``
    child digests, and the root lives in a crash-safe on-chip secure
    register.  See ``docs/integrity_tree.md``.
    """

    #: Children per interior node.  8 keeps a node exactly one 64 B
    #: line of 8 B digests, so tree writes look like counter writes.
    arity: int = 8
    #: On-chip tree-node cache capacity, in 64 B nodes.
    node_cache_entries: int = 64
    #: Tree write queue depth (same ADR/ready-bit semantics as the
    #: counter write queue).
    tree_write_queue_entries: int = 16
    #: Default persistence mode when the design does not pin one:
    #: ``"eager"`` persists the leaf-to-root path at every counter
    #: persist (Freij-style strict ordering); ``"lazy"`` coalesces
    #: dirty tree nodes until counter_cache_writeback()/eviction.
    mode: str = "eager"
    #: Osiris bound: when a write's (global) encryption counter outruns
    #: the line's persisted counter by more than this, the write is
    #: escalated to a counter-atomic pair, so the post-crash counter
    #: search (same window) can always re-authenticate an in-flight
    #: line against its ECC-lane tag.
    max_counter_lag: int = 64

    def __post_init__(self) -> None:
        _require(_is_power_of_two(self.arity), "tree arity must be a power of two")
        _require(self.arity >= 2, "tree arity must be at least 2")
        _require(
            self.arity <= CACHE_LINE_SIZE // COUNTER_SIZE,
            "a tree node's digests must fit one %d B line" % CACHE_LINE_SIZE,
        )
        _require(self.node_cache_entries >= 1, "tree node cache needs entries")
        _require(self.tree_write_queue_entries >= 1, "tree write queue needs entries")
        _require(self.mode in ("eager", "lazy"), "integrity mode is 'eager' or 'lazy'")
        _require(self.max_counter_lag >= 1, "counter lag bound must be positive")


@dataclass(frozen=True)
class SystemConfig:
    """Top-level configuration tying the whole machine together."""

    num_cores: int = 1
    core: CoreConfig = field(default_factory=CoreConfig)
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=64 * KB, ways=8, hit_latency_ns=1.0)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=2 * MB, ways=8, hit_latency_ns=5.0)
    )
    counter_cache: CounterCacheConfig = field(default_factory=CounterCacheConfig)
    controller: MemoryControllerConfig = field(default_factory=MemoryControllerConfig)
    nvm: NVMTimingConfig = field(default_factory=NVMTimingConfig)
    encryption: EncryptionConfig = field(default_factory=EncryptionConfig)
    integrity: IntegrityConfig = field(default_factory=IntegrityConfig)
    memory_size_bytes: int = 8 * GB
    #: When True the simulator moves and encrypts real bytes; when False
    #: it tracks only addresses and timing (for large sweeps).
    functional: bool = True
    #: Memory controllers the physical address space is interleaved
    #: across (:class:`repro.nvm.address.ShardMap`).  1 keeps the
    #: singleton-controller pipeline bit-identical to the pre-sharding
    #: simulator; N > 1 builds one controller per shard, each with its
    #: own event bus, write queues, counter cache and BMT subtree, tied
    #: together by the cross-shard persist barrier
    #: (:mod:`repro.mem.sharded`, ``docs/sharding.md``).
    shards: int = 1

    def __post_init__(self) -> None:
        _require(self.num_cores >= 1, "need at least one core")
        _require(self.memory_size_bytes >= MB, "memory must be at least 1 MB")
        _require(
            self.memory_size_bytes % CACHE_LINE_SIZE == 0,
            "memory size must be line-aligned",
        )
        _require(self.shards >= 1, "need at least one memory-controller shard")
        _require(
            self.memory_size_bytes % (self.shards * CACHE_LINE_SIZE) == 0,
            "memory size must divide evenly across shards",
        )
        _require(
            self.memory_size_bytes // self.shards
            >= CACHE_LINE_SIZE * (COUNTERS_PER_LINE + 1) * COUNTERS_PER_LINE,
            "per-shard memory too small to host data and counter regions",
        )

    def scaled(self, **overrides: Any) -> "SystemConfig":
        """Return a copy with top-level fields replaced."""
        return replace(self, **overrides)

    def with_nvm(self, **overrides: Any) -> "SystemConfig":
        """Return a copy with NVM timing fields replaced."""
        return replace(self, nvm=replace(self.nvm, **overrides))

    def with_controller(self, **overrides: Any) -> "SystemConfig":
        """Return a copy with memory-controller fields replaced."""
        return replace(self, controller=replace(self.controller, **overrides))

    def with_counter_cache(self, size_bytes: int) -> "SystemConfig":
        """Return a copy with a resized counter cache."""
        return replace(
            self,
            counter_cache=replace(self.counter_cache, size_bytes=size_bytes),
        )

    def with_integrity(self, **overrides: Any) -> "SystemConfig":
        """Return a copy with integrity-tree fields replaced."""
        return replace(self, integrity=replace(self.integrity, **overrides))

    def describe(self) -> Dict[str, str]:
        """Human-readable parameter table (used by the Table 2 bench)."""
        nvm = self.nvm
        return {
            "Processor": "trace-driven cores, %.1f GHz" % self.core.frequency_ghz,
            "Cores": str(self.num_cores),
            "L1 cache": "%d KB per core, %d-way" % (self.l1.size_bytes // KB, self.l1.ways),
            "L2 cache": "%d MB shared, %d-way" % (self.l2.size_bytes // MB, self.l2.ways),
            "Counter cache": "%d KB, %d-way"
            % (self.counter_cache.size_bytes // KB, self.counter_cache.ways),
            "Read queue": "%d entries" % self.controller.read_queue_entries,
            "Data write queue": "%d entries" % self.controller.data_write_queue_entries,
            "Counter write queue": "%d entries" % self.controller.counter_write_queue_entries,
            "Memory": "%d GB PCM, %.0f MHz DDR"
            % (self.memory_size_bytes // GB, nvm.bus_mhz),
            "PCM timing": "tRCD/tCL/tCWD/tFAW/tWTR/tWR = %.0f/%.0f/%.0f/%.0f/%.1f/%.0f ns"
            % (nvm.t_rcd_ns, nvm.t_cl_ns, nvm.t_cwd_ns, nvm.t_faw_ns, nvm.t_wtr_ns, nvm.t_wr_ns),
            "En/decryption": "%.0f ns latency" % self.encryption.latency_ns,
        }


def default_config(num_cores: int = 1, **overrides: Any) -> SystemConfig:
    """The paper's Table 2 configuration, optionally overridden."""
    return SystemConfig(num_cores=num_cores, **overrides)


def fast_config(
    num_cores: int = 1, functional: bool = True, shards: int = 1
) -> SystemConfig:
    """A scaled-down configuration for unit tests.

    Small caches make eviction paths reachable with tiny footprints; the
    timing parameters are unchanged so behaviour stays representative.
    """
    return SystemConfig(
        num_cores=num_cores,
        l1=CacheConfig(size_bytes=4 * KB, ways=4, hit_latency_ns=1.0),
        l2=CacheConfig(size_bytes=16 * KB, ways=4, hit_latency_ns=5.0),
        counter_cache=CounterCacheConfig(size_bytes=4 * KB, ways=4),
        memory_size_bytes=64 * MB,
        functional=functional,
        shards=shards,
    )


def bench_config(
    num_cores: int = 1, functional: bool = True, shards: int = 1
) -> SystemConfig:
    """The benchmark configuration used to regenerate the figures.

    The absolute sizes are scaled down from Table 2 so that pure-Python
    trace simulation stays tractable, but the *ratios* that drive the
    paper's effects are preserved:

    * workload footprints (set per experiment) are 8-32x the L2, so
      reads regularly miss on-chip caches and reach the PCM — this is
      what exposes the co-located design's serialized decryption;
    * the counter cache covers 8x its own size in data (one 8 B counter
      per 64 B line), the same coverage ratio as Table 2's 1 MB cache;
    * the shared L2 and the shared counter cache scale with the core
      count, exactly as Table 2 specifies ("2 MB per core" L2, "1 MB
      per core" counter cache);
    * queue depths, PCM timing and the 40 ns crypto latency are the
      paper's values, unscaled.
    """
    return SystemConfig(
        num_cores=num_cores,
        l1=CacheConfig(size_bytes=2 * KB, ways=4, hit_latency_ns=1.0),
        l2=CacheConfig(size_bytes=8 * KB * num_cores, ways=4, hit_latency_ns=5.0),
        counter_cache=CounterCacheConfig(size_bytes=8 * KB * num_cores, ways=8),
        memory_size_bytes=128 * MB,
        functional=functional,
        shards=shards,
    )


def config_from_mapping(values: Mapping[str, Any]) -> SystemConfig:
    """Build a :class:`SystemConfig` from a flat mapping.

    Recognized keys are the field names of :class:`SystemConfig` plus
    dotted names for nested fields, e.g. ``{"nvm.t_wr_ns": 150.0}``.
    Unknown keys raise :class:`ConfigurationError`.
    """
    config = SystemConfig()
    top: Dict[str, Any] = {}
    nested: Dict[str, Dict[str, Any]] = {}
    valid_top = {f.name for f in dataclasses.fields(SystemConfig)}
    for key, value in values.items():
        if "." in key:
            group, _, leaf = key.partition(".")
            if group not in valid_top:
                raise ConfigurationError("unknown config group %r" % group)
            nested.setdefault(group, {})[leaf] = value
        elif key in valid_top:
            top[key] = value
        else:
            raise ConfigurationError("unknown config key %r" % key)
    for group, fields in nested.items():
        current = getattr(config, group)
        try:
            top[group] = replace(current, **fields)
        except TypeError as exc:
            raise ConfigurationError(str(exc)) from exc
    return replace(config, **top)
