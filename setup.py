"""Legacy setup shim.

The offline evaluation environment ships setuptools without the
``wheel`` package, so PEP 517 editable installs fail with
``invalid command 'bdist_wheel'``.  This shim lets
``pip install -e .`` fall back to the classic ``setup.py develop``
path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
