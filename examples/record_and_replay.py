#!/usr/bin/env python3
"""Record a workload trace to disk, replay it under several designs.

Traces are the simulator's unit of reproducibility: the *same* op
stream replayed under different designs is what makes comparisons
apples-to-apples.  This example

1. generates the B-tree workload's trace once,
2. saves it in the line-oriented trace format,
3. reloads it and replays it under four designs, confirming every
   replay is byte-identical to the original run.

Run:  python examples/record_and_replay.py
"""

import os
import tempfile

from repro import Machine, fast_config
from repro.bench.harness import build_traces
from repro.sim.tracefile import load_traces, save_traces
from repro.workloads.base import WorkloadParams


def main() -> None:
    config = fast_config()
    params = WorkloadParams(operations=20, footprint_bytes=16 * 1024)
    traces, _runs, _layout = build_traces("btree", config, params=params)

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "btree.trace")
        save_traces(traces, path)
        size_kb = os.path.getsize(path) / 1024
        print("recorded %d ops to %s (%.1f KB)" % (len(traces[0]), path, size_kb))

        replayed = load_traces(path)
        print("reloaded %d trace(s); replaying under four designs:\n" % len(replayed))

        reference = Machine(config, "no-encryption").run(traces)
        print("  %-14s %12s %14s" % ("design", "runtime", "bytes written"))
        for design in ("no-encryption", "sca", "fca", "co-located"):
            result = Machine(fast_config(), design).run(replayed)
            print("  %-14s %9.0f ns %11d B" % (
                design, result.stats.runtime_ns, result.stats.bytes_written))
            if design == "no-encryption":
                assert result.stats.runtime_ns == reference.stats.runtime_ns
                assert result.stats.bytes_written == reference.stats.bytes_written
        print("\nreplay of the recorded trace is bit-identical to the original run")


if __name__ == "__main__":
    main()
