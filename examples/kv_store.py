#!/usr/bin/env python3
"""A crash-consistent key-value store on encrypted NVMM.

A small but complete application built on the library's public API: a
persistent hash-table KV store whose puts run as undo-logged
transactions with the paper's SCA primitives.  The example

1. executes a batch of puts under every design point and compares
   runtime and write traffic (a miniature Figure 12 / 14),
2. crashes the SCA run at 200 instants and verifies the store always
   recovers to a consistent prefix of the puts.

Run:  python examples/kv_store.py
"""

from __future__ import annotations

import random

from repro import Machine, TraceBuilder, fast_config
from repro.config import CACHE_LINE_SIZE
from repro.crash.checker import sweep_crash_points
from repro.sim.machine import SimulationResult
from repro.txn.heap import MemoryLayout
from repro.txn.undolog import UndoLogTransactions
from repro.workloads.base import LineModel, PrefixValidator, TxnRecorder, WorkloadRun

BUCKETS = 256
PAIRS_PER_BUCKET = 4


class PersistentKVStore:
    """Open-addressing KV store generating transactional traces."""

    def __init__(self, recorder: TxnRecorder, base: int) -> None:
        self.recorder = recorder
        self.base = base

    def _bucket(self, key: int, probe: int) -> int:
        mixed = (key * 0x9E3779B97F4A7C15) & ((1 << 64) - 1)
        return self.base + (((mixed >> 16) + probe) % BUCKETS) * CACHE_LINE_SIZE

    def put(self, key: int, value: int) -> None:
        recorder = self.recorder
        recorder.begin()
        for probe in range(BUCKETS):
            bucket = self._bucket(key, probe)
            line = recorder.read_line(bucket)
            for slot in range(PAIRS_PER_BUCKET):
                offset = slot * 16
                existing = int.from_bytes(line[offset : offset + 8], "little")
                if existing in (0, key):
                    recorder.write_u64(bucket + offset, key)
                    recorder.write_u64(bucket + offset + 8, value)
                    recorder.commit()
                    return
        raise RuntimeError("store full")

    def get(self, key: int) -> int | None:
        for probe in range(BUCKETS):
            bucket = self._bucket(key, probe)
            line = self.recorder.model.line(bucket)
            for slot in range(PAIRS_PER_BUCKET):
                offset = slot * 16
                existing = int.from_bytes(line[offset : offset + 8], "little")
                if existing == key:
                    return int.from_bytes(line[offset + 8 : offset + 16], "little")
                if existing == 0:
                    return None
        return None


def run_store(design: str, puts) -> tuple[SimulationResult, WorkloadRun]:
    config = fast_config()
    layout = MemoryLayout.build(config, log_capacity=16)
    arena = layout.arena(0)
    builder = TraceBuilder("kv-%s" % design)
    txns = UndoLogTransactions(builder, arena)
    recorder = TxnRecorder(builder, txns, LineModel())
    store = PersistentKVStore(recorder, arena.heap.alloc(BUCKETS * CACHE_LINE_SIZE))
    for key, value in puts:
        store.put(key, value)
    assert all(store.get(k) == v for k, v in dict(puts).items())
    result = Machine(config, design).run([builder.build()])
    run = WorkloadRun(
        name="kv",
        arena=arena,
        initial_image={},
        history=recorder.history,
        final_model=recorder.model,
        mechanism="undo",
        operations=len(puts),
    )
    return result, run


def main() -> None:
    rng = random.Random(7)
    puts = [(rng.getrandbits(32) | 1, rng.getrandbits(32)) for _ in range(25)]

    print("25 puts into a crash-consistent KV store, per design point:")
    print("  %-14s %12s %14s" % ("design", "runtime", "bytes to NVM"))
    baseline = None
    for design in ("no-encryption", "ideal", "sca", "fca", "co-located", "co-located-cc"):
        result, _run = run_store(design, puts)
        if baseline is None:
            baseline = result.stats.runtime_ns
        print("  %-14s %9.0f ns %11d B   (%.2fx)" % (
            design,
            result.stats.runtime_ns,
            result.stats.bytes_written,
            result.stats.runtime_ns / baseline,
        ))

    print("\ncrash-sweeping the SCA run...")
    result, run = run_store("sca", puts)
    validator = PrefixValidator(run, txn_end_times=result.txn_end_times[0])
    report = sweep_crash_points(result, validator, max_points=200)
    print("  %d crash points -> %d consistent, %d inconsistent" % (
        report.total, report.consistent, report.inconsistent))
    assert report.all_consistent
    print("  every crash recovered to a consistent prefix of the puts")


if __name__ == "__main__":
    main()
