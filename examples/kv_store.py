#!/usr/bin/env python3
"""A crash-consistent key-value service on encrypted NVMM.

A thin demo over :mod:`repro.service` — the library's multi-tenant KV
engine, seeded traffic generator and crash/recover/SLO scenario runner
(the same machinery behind ``repro-bench serve``).  The example

1. replays one seeded traffic stream under several design points and
   compares runtime and tail latency (a miniature Figure 12 / 14),
2. cuts power mid-traffic on the SCA run, recovers, and checks the
   durability triage: every *acknowledged* operation survived, every
   tenant recovered to a linearizable prefix,
3. repeats the crash on the ``unsafe`` design to show what the paper's
   mechanisms are buying: without them, acknowledged writes vanish.

An earlier revision of this example hand-rolled its hash table and
leaked an open transaction when the store filled up (it raised after
``begin()`` without aborting); the service engine's
:class:`~repro.service.kv.TenantKV` aborts cleanly and splits buckets
instead, so the store never fills.

Run:  python examples/kv_store.py
"""

from __future__ import annotations

from repro.service import ServiceJob, TrafficSpec, run_service_job

DESIGNS = ("no-encryption", "ideal", "sca", "fca", "co-located-cc")


def main() -> None:
    spec = TrafficSpec(tenants=3, operations=90, seed=7, keyspace=64)

    print("one seeded traffic stream (%d ops, %d tenants), per design point:"
          % (spec.operations, spec.tenants))
    print("  %-14s %12s %10s %10s" % ("design", "runtime", "p99", "ops/ms"))
    baseline = None
    for design in DESIGNS:
        report = run_service_job(ServiceJob(design=design, traffic=spec, crash=False))
        runtime = report["runtime_ns"]
        if baseline is None:
            baseline = runtime
        totals = report["totals"]
        print("  %-14s %9.0f ns %7.2f us %10.2f   (%.2fx)" % (
            design,
            runtime,
            totals["latency"]["p99_ns"] / 1e3,
            totals["throughput_ops_per_ms"],
            runtime / baseline,
        ))

    print("\ncutting power mid-traffic on the SCA run...")
    report = run_service_job(ServiceJob(design="sca", traffic=spec, crash=True))
    crash = report["crash"]
    totals = report["totals"]
    print("  crash @ %.0f ns -> %s" % (crash["crash_ns"], report["status"]))
    for tenant in report["tenants"]:
        durability = tenant["durability"]
        print("  tenant %d: %d/%d acked, recovered prefix %s, %d acked-but-lost"
              % (tenant["tenant"], tenant["acked"], tenant["ops"],
                 durability["recovered_prefix"], durability["acked_lost"]))
    assert report["consistent"], "SCA recovery must be consistent"
    assert totals["acked_lost"] == 0, "SCA must not lose acknowledged writes"
    print("  every acknowledged operation survived the crash")

    print("\nsame crash without the paper's mechanisms (design 'unsafe'):")
    report = run_service_job(ServiceJob(design="unsafe", traffic=spec, crash=True))
    totals = report["totals"]
    print("  verdict %s: %d acknowledged operation(s) lost" % (
        report["status"], totals["acked_lost"]))
    assert totals["acked_lost"] > 0 or not report["consistent"]


if __name__ == "__main__":
    main()
