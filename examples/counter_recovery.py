#!/usr/bin/env python3
"""Beyond the paper: recovering lost counters with integrity tags.

The paper prevents data/counter desync at run time (counter-atomicity).
The follow-on research direction it opened asks: what if we instead
*repair* the desync at recovery time?  Persist a small MAC with every
data line (atomic via the ECC lanes); after a crash, for each line that
fails to decrypt, search forward from the stale persisted counter until
the MAC verifies — the verifying candidate *is* the lost counter.

This example crashes the `unsafe` design (encryption with no
counter-atomicity) mid-run, shows the undecryptable lines, then runs
the bounded counter search and re-reads the repaired memory.

Run:  python examples/counter_recovery.py
"""

from repro import Machine, TraceBuilder, fast_config
from repro.crash.counter_recovery import CounterRecoverer
from repro.crash.injector import CrashInjector
from repro.crash.recovery import RecoveryManager

BASE = 0x4000
LINES = 8


def build_program() -> TraceBuilder:
    builder = TraceBuilder("unsafe-writes")
    builder.txn_begin()
    for i in range(LINES):
        builder.store_u64(BASE + i * 64, 0x1000 + i)
        builder.clwb(BASE + i * 64)
    builder.ccwb(BASE)  # no-op under the unsafe design
    builder.persist_barrier()
    builder.txn_end()
    return builder


def main() -> None:
    config = fast_config()
    result = Machine(config, "unsafe").run([build_program().build()])
    injector = CrashInjector(result)
    manager = RecoveryManager(config.encryption)

    image = injector.crash_at(result.stats.runtime_ns + 1e9)
    memory = manager.recover(image)
    print("crash under the unsafe design:")
    print("  %d of %d lines undecryptable (stale persisted counters)"
          % (len(memory.garbage_lines), LINES))
    sample = sorted(memory.garbage_lines)[0]
    print("  e.g. line 0x%x reads %s instead of its value"
          % (sample, memory.read(sample, 8, strict=False).hex()))

    recoverer = CounterRecoverer(config.encryption, max_lag=64)
    report = recoverer.recover_image(image)
    print("\nbounded counter search (max lag %d):" % recoverer.max_lag)
    print("  checked %d lines: %d already consistent, %d recovered, %d unrecoverable"
          % (report.lines_checked, report.already_consistent,
             report.recovered, report.unrecoverable))
    print("  candidates tried: %d" % report.candidates_tried)

    repaired = manager.recover(image)
    print("\nafter repair:")
    print("  undecryptable lines: %d" % len(repaired.garbage_lines))
    for i in (0, LINES - 1):
        value = repaired.read_u64(BASE + i * 64)
        assert value == 0x1000 + i
    print("  line values verified: 0x%x ... 0x%x"
          % (repaired.read_u64(BASE), repaired.read_u64(BASE + (LINES - 1) * 64)))
    print("\nThis is the trade the Osiris line of work makes: no run-time")
    print("pairing, a bounded search at recovery time instead.")


if __name__ == "__main__":
    main()
