#!/usr/bin/env python3
"""The paper's Figure 4 walkthrough: an encrypted persistent linked list.

Inserting a node takes three steps — create the node, set its next
pointer, update the head pointer.  The head pointer is the write that
immediately affects recoverability: if its encrypted data persists but
its counter does not, a rebooted controller decrypts the head with the
stale counter and gets a *random* pointer (paper Eq. 4).

This example runs the insert twice:

* under the ``unsafe`` design (counter-mode encryption, no
  counter-atomicity) — and finds crash points where the head pointer
  decrypts to garbage, printing the actual bytes;
* under ``sca`` with the head annotated ``CounterAtomic`` — and shows
  every crash point recovers a valid list.

Run:  python examples/linked_list_crash.py
"""

from repro import CounterAtomic, Machine, TraceBuilder, fast_config
from repro.crash.injector import CrashInjector
from repro.crash.recovery import RecoveryManager
from repro.errors import DecryptionFailure

HEAD = CounterAtomic(0x1000, name="head")
NODE_OLD = 0x2000  # pre-existing node
NODE_NEW = 0x3000  # the node being inserted
VALID_NODES = {0, NODE_OLD, NODE_NEW}


def build_insert() -> TraceBuilder:
    builder = TraceBuilder("list-insert")
    # Setup: one existing node, head -> NODE_OLD.
    builder.store_u64(NODE_OLD, 7)          # item
    builder.store_u64(NODE_OLD + 8, 0)      # next = null
    builder.clwb(NODE_OLD)
    builder.store_var(HEAD, NODE_OLD)
    builder.clwb(HEAD.address)
    builder.ccwb(NODE_OLD)
    builder.ccwb(HEAD.address)
    builder.persist_barrier()

    # Figure 4 steps 1-2: create the new node, point it at the old head.
    builder.txn_begin("insert")
    builder.store_u64(NODE_NEW, 3)          # item = 3
    builder.store_u64(NODE_NEW + 8, NODE_OLD)  # next = old head
    builder.clwb(NODE_NEW)
    builder.ccwb(NODE_NEW)
    builder.persist_barrier()
    # Step 3: the head update — CounterAtomic under SCA.
    builder.store_var(HEAD, NODE_NEW)
    builder.clwb(HEAD.address)
    builder.persist_barrier()
    builder.txn_end("insert")
    return builder


def walk(memory):
    """Walk the list; returns items or raises on a garbage pointer."""
    items = []
    pointer = memory.read_u64(HEAD.address)
    while pointer:
        if pointer not in VALID_NODES:
            raise DecryptionFailure(pointer, "head/next decrypted to garbage "
                                    "pointer 0x%x" % pointer)
        items.append(memory.read_u64(pointer))
        pointer = memory.read_u64(pointer + 8)
    return items


def sweep(design: str) -> None:
    config = fast_config()
    result = Machine(config, design).run([build_insert().build()])
    injector = CrashInjector(result)
    recovery = RecoveryManager(config.encryption)
    good = bad = 0
    first_failure = None
    for crash_ns in injector.interesting_times() + injector.midpoint_times():
        memory = recovery.recover(injector.crash_at(crash_ns))
        try:
            items = walk(memory)
            assert items in ([], [7], [3, 7]), "torn list: %r" % items
            good += 1
        except (DecryptionFailure, AssertionError) as failure:
            bad += 1
            if first_failure is None:
                raw = memory.read(HEAD.address, 8, strict=False)
                first_failure = (crash_ns, failure, raw)
    print("%-8s %3d consistent, %3d inconsistent crash points" % (design, good, bad))
    if first_failure:
        crash_ns, failure, raw = first_failure
        print("         first failure at %.1f ns: %s" % (crash_ns, failure))
        print("         head pointer bytes after bad decryption: %s" % raw.hex())


def main() -> None:
    print("Inserting a node into an encrypted persistent linked list")
    print("and crashing at every interesting instant (paper Figure 4):\n")
    sweep("unsafe")
    sweep("sca")
    print("\nThe CounterAtomic annotation on the head pointer (plus the")
    print("counter_cache_writeback barrier protocol) is exactly what turns")
    print("the unsafe failures into consistent recoveries.")


if __name__ == "__main__":
    main()
