#!/usr/bin/env python3
"""Sweep the design space and regenerate mini versions of the figures.

Uses the benchmark harness directly (the same code path as
``repro-bench``) to produce a compact report: normalized runtime,
normalized write traffic, counter-cache behaviour and the NVM-latency
sensitivity — a condensed tour of the paper's evaluation section.

Run:  python examples/design_space_sweep.py
"""

from repro.bench.harness import run_workload
from repro.config import KB, bench_config
from repro.utils.tables import format_table
from repro.workloads.base import WorkloadParams

WORKLOADS = ("array", "queue", "hash", "btree", "rbtree")
DESIGNS = ("ideal", "sca", "fca", "co-located", "co-located-cc")
PARAMS = WorkloadParams(operations=30, footprint_bytes=48 * KB)


def normalized_runtimes():
    rows = []
    for workload in WORKLOADS:
        config = bench_config()
        base = run_workload("no-encryption", workload, config=config, params=PARAMS)
        row = [workload]
        for design in DESIGNS:
            outcome = run_workload(design, workload, config=config, params=PARAMS)
            row.append(outcome.stats.runtime_ns / base.stats.runtime_ns)
        rows.append(row)
    return rows


def traffic_and_cache(workload="hash"):
    rows = []
    config = bench_config()
    base = run_workload("no-encryption", workload, config=config, params=PARAMS)
    for design in DESIGNS:
        outcome = run_workload(design, workload, config=config, params=PARAMS)
        stats = outcome.stats
        rows.append(
            [
                design,
                stats.bytes_written / base.stats.bytes_written,
                stats.counter_cache_miss_rate or 0.0,
                stats.paired_writes,
            ]
        )
    return rows


def latency_sensitivity(workload="array"):
    rows = []
    for label, scale in (("3x-slower", 3.0), ("pcm", 1.0), ("4x-faster", 0.25)):
        config = bench_config().with_nvm(read_latency_scale=scale)
        colocated = run_workload("co-located", workload, config=config, params=PARAMS)
        sca = run_workload("sca", workload, config=config, params=PARAMS)
        rows.append([label, colocated.stats.runtime_ns / sca.stats.runtime_ns])
    return rows


def main() -> None:
    print(format_table(
        ["workload"] + list(DESIGNS),
        normalized_runtimes(),
        title="Runtime normalized to no-encryption (mini Figure 12)",
    ))
    print()
    print(format_table(
        ["design", "write traffic", "C$ miss rate", "paired writes"],
        traffic_and_cache(),
        title="Traffic and counter-cache behaviour, hash workload (mini Figure 14)",
    ))
    print()
    print(format_table(
        ["read latency", "SCA speedup over co-located"],
        latency_sensitivity(),
        title="NVM read-latency sensitivity (mini Figure 17)",
    ))


if __name__ == "__main__":
    main()
