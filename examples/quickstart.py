#!/usr/bin/env python3
"""Quickstart: encrypted NVMM, a counter-atomic write, a crash, recovery.

Walks through the library's core loop in ~60 lines:

1. build a tiny persistent program with the paper's primitives
   (``CounterAtomic`` stores, ``clwb``, ``counter_cache_writeback()``,
   ``persist_barrier()``),
2. run it on the simulated machine under selective counter-atomicity,
3. inject a power failure at every interesting instant,
4. decrypt each crash image the way a rebooted memory controller would,
   and show that every image is consistent.

Run:  python examples/quickstart.py
"""

from repro import CounterAtomic, Machine, Plain, TraceBuilder, fast_config
from repro.crash.injector import CrashInjector
from repro.crash.recovery import RecoveryManager

BALANCE_A = Plain(0x1000, name="account_a")
BALANCE_B = Plain(0x1040, name="account_b")
COMMITTED = CounterAtomic(0x1080, name="committed")  # the recoverability pivot


def build_transfer(amount: int) -> TraceBuilder:
    """Move `amount` from A to B with an (intentionally simple) protocol:
    write both balances, flush data and counters, then flip the commit
    flag counter-atomically."""
    builder = TraceBuilder("transfer")
    builder.txn_begin("transfer")
    builder.store_var(BALANCE_A, 100 - amount)
    builder.store_var(BALANCE_B, amount)
    builder.clwb(BALANCE_A.address)
    builder.clwb(BALANCE_B.address)
    builder.ccwb(BALANCE_A.address)  # counter_cache_writeback()
    builder.ccwb(BALANCE_B.address)
    builder.persist_barrier()
    builder.store_var(COMMITTED, 1)  # CounterAtomic: data+counter pair
    builder.clwb(COMMITTED.address)
    builder.persist_barrier()
    builder.txn_end("transfer")
    return builder


def main() -> None:
    config = fast_config()
    result = Machine(config, "sca").run([build_transfer(30).build()])
    print("ran under SCA: %.0f ns, %d bytes written to NVM" % (
        result.stats.runtime_ns, result.stats.bytes_written))

    injector = CrashInjector(result)
    recovery = RecoveryManager(config.encryption)
    crash_points = injector.interesting_times() + injector.midpoint_times()

    consistent = 0
    for crash_ns in crash_points:
        image = injector.crash_at(crash_ns)
        memory = recovery.recover(image)
        committed = memory.read_u64(COMMITTED.address)  # raises on garbage
        if committed == 1:
            # Commit flag visible => balances must be the new ones.
            assert memory.read_u64(BALANCE_A.address) == 70
            assert memory.read_u64(BALANCE_B.address) == 30
        consistent += 1
    print("injected %d crashes: every recovered state was consistent"
          % consistent)

    final = recovery.recover(injector.crash_at(result.stats.runtime_ns + 1e9))
    print("final state: A=%d B=%d committed=%d" % (
        final.read_u64(BALANCE_A.address),
        final.read_u64(BALANCE_B.address),
        final.read_u64(COMMITTED.address)))


if __name__ == "__main__":
    main()
