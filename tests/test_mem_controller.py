"""Tests for the memory controller across all design policies."""

import pytest

from repro.config import CACHE_LINE_SIZE, fast_config
from repro.core.designs import get_design
from repro.mem.controller import COLOCATED_PAYLOAD, MemoryController

LINE = bytes(i % 256 for i in range(64))
LINE2 = bytes((i * 3) % 256 for i in range(64))


def controller(design: str, **config_overrides) -> MemoryController:
    config = fast_config()
    if config_overrides:
        config = config.scaled(**config_overrides)
    return MemoryController(config, get_design(design))


class TestNoEncryption:
    def test_write_then_read_round_trip(self):
        ctl = controller("no-encryption")
        ctl.write_line(0x40, LINE, 0.0)
        result = ctl.read_line(0x40, 1000.0)
        assert result.plaintext == LINE

    def test_read_latency_without_decrypt(self):
        ctl = controller("no-encryption")
        result = ctl.read_line(0x40, 0.0)
        expected = ctl.timing.read_access_ns + ctl.timing.burst_ns(64)
        assert result.complete_ns == pytest.approx(expected)

    def test_traffic_is_64B_per_line(self):
        ctl = controller("no-encryption")
        ctl.write_line(0x40, LINE, 0.0)
        assert ctl.stats.bytes_written == 64


class TestSeparateCounterDesigns:
    @pytest.mark.parametrize("design", ["sca", "fca", "ideal", "unsafe"])
    def test_round_trip(self, design):
        ctl = controller(design)
        ctl.write_line(0x40, LINE, 0.0)
        result = ctl.read_line(0x40, 1000.0)
        assert result.plaintext == LINE

    def test_device_stores_ciphertext(self):
        ctl = controller("sca")
        ctl.write_line(0x40, LINE, 0.0)
        assert ctl.device.read_line(0x40).payload != LINE

    def test_counter_hit_read_overlaps_decrypt(self):
        ctl = controller("sca")
        ctl.write_line(0x40, LINE, 0.0)  # counter now cached
        result = ctl.read_line(0x40, 10000.0)
        raw = result.raw_read_ns
        # Overlap: completion is max(read, 40ns), not read + 40ns.
        assert result.complete_ns - 10000.0 == pytest.approx(
            max(raw, ctl.engine.latency_ns)
        )

    def test_counter_miss_read_fetches_counter_line(self):
        ctl = controller("sca")
        ctl.write_line(0x40, LINE, 0.0)
        ctl.engine.counter_cache.invalidate_all()
        before = ctl.stats.counter_fill_reads
        ctl.read_line(0x40, 10000.0)
        assert ctl.stats.counter_fill_reads == before + 1

    def test_sca_plain_write_sends_no_counter_write(self):
        ctl = controller("sca")
        ctl.write_line(0x40, LINE, 0.0, counter_atomic=False)
        assert ctl.stats.counter_writes == 0

    def test_sca_ca_write_pairs(self):
        ctl = controller("sca")
        ticket = ctl.write_line(0x40, LINE, 0.0, counter_atomic=True)
        assert ticket.paired
        assert ctl.stats.paired_writes == 1
        assert ctl.stats.counter_writes == 1

    def test_fca_pairs_every_write(self):
        ctl = controller("fca")
        ctl.write_line(0x40, LINE, 0.0, counter_atomic=False)
        ctl.write_line(0x80, LINE, 0.0, counter_atomic=True)
        assert ctl.stats.paired_writes == 2

    def test_pair_persists_architectural_counter(self):
        ctl = controller("sca")
        ticket = ctl.write_line(0x40, LINE, 0.0, counter_atomic=True)
        assert ticket.paired
        assert ctl.counter_store.read(0x40) != 0

    def test_plain_write_leaves_architectural_counter_stale(self):
        """The SCA window: data persisted, counter only in the cache."""
        ctl = controller("sca")
        ctl.write_line(0x40, LINE, 0.0, counter_atomic=False)
        assert ctl.counter_store.read(0x40) == 0

    def test_ideal_counters_magically_persist(self):
        ctl = controller("ideal")
        ctl.write_line(0x40, LINE, 0.0, counter_atomic=False)
        assert ctl.counter_store.read(0x40) != 0
        assert ctl.stats.counter_writes == 0  # and for free


class TestCounterCacheWriteback:
    def test_ccwb_flushes_dirty_counters(self):
        ctl = controller("sca")
        ctl.write_line(0x40, LINE, 0.0, counter_atomic=False)
        ticket = ctl.counter_cache_writeback(0x40, 10.0)
        assert ticket is not None
        assert ctl.counter_store.read(0x40) != 0

    def test_ccwb_on_clean_line_is_noop(self):
        ctl = controller("sca")
        ctl.write_line(0x40, LINE, 0.0, counter_atomic=False)
        ctl.counter_cache_writeback(0x40, 10.0)
        assert ctl.counter_cache_writeback(0x40, 20.0) is None

    def test_ccwb_disabled_for_fca(self):
        ctl = controller("fca")
        ctl.write_line(0x40, LINE, 0.0)
        assert ctl.counter_cache_writeback(0x40, 10.0) is None

    def test_ccwb_disabled_without_encryption(self):
        ctl = controller("no-encryption")
        assert ctl.counter_cache_writeback(0x40, 10.0) is None


class TestColocatedDesigns:
    @pytest.mark.parametrize("design", ["co-located", "co-located-cc"])
    def test_round_trip(self, design):
        ctl = controller(design)
        ctl.write_line(0x40, LINE, 0.0)
        result = ctl.read_line(0x40, 5000.0)
        assert result.plaintext == LINE

    def test_single_72B_write(self):
        ctl = controller("co-located")
        ctl.write_line(0x40, LINE, 0.0)
        assert ctl.stats.bytes_written == COLOCATED_PAYLOAD
        assert ctl.stats.counter_writes == 0

    def test_reads_fetch_72B(self):
        ctl = controller("co-located")
        ctl.read_line(0x40, 0.0)
        assert ctl.stats.bytes_read == COLOCATED_PAYLOAD

    def test_no_cache_design_serializes_decrypt(self):
        ctl = controller("co-located")
        ctl.write_line(0x40, LINE, 0.0)
        result = ctl.read_line(0x40, 10000.0)
        assert result.complete_ns - 10000.0 == pytest.approx(
            result.raw_read_ns + ctl.engine.latency_ns
        )

    def test_cache_design_overlaps_on_hit(self):
        ctl = controller("co-located-cc")
        ctl.write_line(0x40, LINE, 0.0)  # counter cached by the write
        result = ctl.read_line(0x40, 10000.0)
        assert result.counter_cache_hit
        assert result.complete_ns - 10000.0 == pytest.approx(
            max(result.raw_read_ns, ctl.engine.latency_ns)
        )

    def test_cache_design_serializes_on_miss_then_hits(self):
        ctl = controller("co-located-cc")
        ctl.write_line(0x40, LINE, 0.0)
        ctl.engine.counter_cache.invalidate_all()
        miss = ctl.read_line(0x40, 10000.0)
        assert not miss.counter_cache_hit
        hit = ctl.read_line(0x40, 20000.0)
        assert hit.counter_cache_hit


class TestCoalescing:
    def test_repeated_plain_writes_coalesce(self):
        ctl = controller("sca")
        first = ctl.write_line(0x40, LINE, 0.0)
        second = ctl.write_line(0x40, LINE2, 1.0)
        assert not first.coalesced
        assert second.coalesced
        assert ctl.stats.bytes_written == 64

    def test_coalesced_write_updates_device(self):
        ctl = controller("sca")
        ctl.write_line(0x40, LINE, 0.0)
        ctl.write_line(0x40, LINE2, 1.0)
        result = ctl.read_line(0x40, 10000.0)
        assert result.plaintext == LINE2

    def test_pair_to_pair_merge(self):
        ctl = controller("sca")
        first = ctl.write_line(0x40, LINE, 0.0, counter_atomic=True)
        second = ctl.write_line(0x40, LINE2, 1.0, counter_atomic=True)
        assert first.paired and second.paired
        assert second.coalesced
        result = ctl.read_line(0x40, 10000.0)
        assert result.plaintext == LINE2

    def test_plain_write_does_not_merge_into_pair(self):
        ctl = controller("sca")
        ctl.write_line(0x40, LINE, 0.0, counter_atomic=True)
        plain = ctl.write_line(0x40, LINE2, 1.0, counter_atomic=False)
        assert not plain.coalesced

    def test_coalescing_disabled_by_config(self):
        config = fast_config().with_controller(coalesce_writes=False)
        ctl = MemoryController(config, get_design("sca"))
        ctl.write_line(0x40, LINE, 0.0)
        second = ctl.write_line(0x40, LINE2, 1.0)
        assert not second.coalesced


class TestBusWidthSelection:
    def test_colocated_uses_72bit_bus(self):
        assert controller("co-located").timing.bus_width_bits == 72

    def test_separate_uses_64bit_bus(self):
        assert controller("sca").timing.bus_width_bits == 64


class TestFifoDrainAblation:
    def test_fifo_serializes_drains(self):
        config = fast_config().with_controller(drain_policy="fifo")
        fifo = MemoryController(config, get_design("sca"))
        relaxed = controller("sca")
        for ctl in (fifo, relaxed):
            for i in range(8):
                ctl.write_line(i * 64, LINE, 0.0)
        fifo_last = max(r.drain_ns for r in fifo.journal.records)
        relaxed_last = max(r.drain_ns for r in relaxed.journal.records)
        assert fifo_last > relaxed_last


class TestReadQueue:
    def test_slots_released_after_arrival(self):
        ctl = controller("no-encryption")
        for i in range(8):
            ctl.read_line(0x1000 + i * 64, 10000.0 * i)
        # Widely spaced reads never accumulate.
        assert ctl.read_queue_peak <= 2

    def test_burst_beyond_capacity_waits(self):
        config_small = fast_config().with_controller(read_queue_entries=2)
        ctl = MemoryController(config_small, get_design("no-encryption"))
        # Three simultaneous reads to one bank: the third must wait for
        # a queue slot (and records the wait).
        ctl.read_line(0x1000, 0.0)
        ctl.read_line(0x1000 + 8 * 64, 0.0)  # same bank, different row
        ctl.read_line(0x1000 + 16 * 64, 0.0)
        assert ctl.total_read_queue_wait_ns > 0.0
        assert ctl.read_queue_peak == 2

    def test_counter_fills_share_the_read_queue(self):
        ctl = controller("sca")
        ctl.write_line(0x1000, LINE, 0.0)
        ctl.engine.counter_cache.invalidate_all()
        ctl.read_line(0x1000, 5000.0)  # data read + parallel counter fill
        assert ctl.read_queue_peak >= 1
