"""Tests for the design-point policies."""

import pytest

from repro.core.designs import (
    ALL_DESIGNS,
    BASELINE_DESIGNS,
    DesignPolicy,
    get_design,
    list_designs,
)
from repro.errors import ConfigurationError


class TestRegistry:
    def test_all_six_evaluation_designs_present(self):
        names = list_designs()
        assert names == [
            "no-encryption",
            "ideal",
            "co-located",
            "co-located-cc",
            "fca",
            "sca",
        ]

    def test_unsafe_available_when_requested(self):
        assert "unsafe" in list_designs(include_unsafe=True)
        assert "unsafe" not in list_designs()

    def test_lookup_by_name(self):
        assert get_design("sca").name == "sca"

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            get_design("fastest")

    def test_baseline_designs_subset(self):
        assert set(BASELINE_DESIGNS) <= set(ALL_DESIGNS)


class TestPolicyProperties:
    def test_sca_pairs_only_annotated_writes(self):
        sca = get_design("sca")
        assert sca.write_is_paired(counter_atomic=True)
        assert not sca.write_is_paired(counter_atomic=False)

    def test_fca_pairs_everything(self):
        fca = get_design("fca")
        assert fca.write_is_paired(counter_atomic=True)
        assert fca.write_is_paired(counter_atomic=False)

    def test_colocated_never_pairs(self):
        for name in ("co-located", "co-located-cc"):
            policy = get_design(name)
            assert not policy.write_is_paired(True)

    def test_crash_consistency_classification(self):
        """All evaluation designs guarantee crash consistency; the
        unsafe demonstration design does not (paper Figures 3-4)."""
        for design in ALL_DESIGNS:
            assert design.crash_consistent, design.name
        assert not get_design("unsafe").crash_consistent

    def test_separate_counters_only_for_split_layouts(self):
        assert get_design("sca").uses_separate_counters
        assert get_design("fca").uses_separate_counters
        assert not get_design("co-located").uses_separate_counters
        assert not get_design("no-encryption").uses_separate_counters

    def test_bus_widths(self):
        assert get_design("co-located").bus_width_bits == 72
        assert get_design("co-located-cc").bus_width_bits == 72
        assert get_design("sca").bus_width_bits == 64


class TestPolicyValidation:
    def _valid_kwargs(self):
        return dict(
            name="x",
            description="",
            encrypts=True,
            colocated=False,
            has_counter_cache=True,
            pair_all_writes=False,
            pair_ca_writes=False,
            counter_evict_writes=False,
            ccwb_enabled=False,
            magic_counter_persistence=False,
            bus_width_bits=64,
        )

    def test_rejects_pairing_both_modes(self):
        kwargs = self._valid_kwargs()
        kwargs.update(pair_all_writes=True, pair_ca_writes=True)
        with pytest.raises(ConfigurationError):
            DesignPolicy(**kwargs)

    def test_rejects_colocated_with_pairing(self):
        kwargs = self._valid_kwargs()
        kwargs.update(colocated=True, pair_ca_writes=True, bus_width_bits=72)
        with pytest.raises(ConfigurationError):
            DesignPolicy(**kwargs)

    def test_rejects_colocated_narrow_bus(self):
        kwargs = self._valid_kwargs()
        kwargs.update(colocated=True, bus_width_bits=64)
        with pytest.raises(ConfigurationError):
            DesignPolicy(**kwargs)

    def test_rejects_encryption_features_without_encryption(self):
        kwargs = self._valid_kwargs()
        kwargs.update(encrypts=False)
        with pytest.raises(ConfigurationError):
            DesignPolicy(**kwargs)
