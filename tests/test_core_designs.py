"""Tests for the design-point policies."""

import pytest

from repro.core.designs import (
    ALL_DESIGNS,
    BASELINE_DESIGNS,
    INTEGRITY_DESIGNS,
    AtomicitySpec,
    DesignPolicy,
    IntegritySpec,
    LayoutSpec,
    design_name,
    get_design,
    integrity_variant,
    list_designs,
)
from repro.errors import ConfigurationError


class TestRegistry:
    def test_all_six_evaluation_designs_present(self):
        names = list_designs()
        assert names == [
            "no-encryption",
            "ideal",
            "co-located",
            "co-located-cc",
            "fca",
            "sca",
        ]

    def test_unsafe_available_when_requested(self):
        assert "unsafe" in list_designs(include_unsafe=True)
        assert "unsafe" not in list_designs()

    def test_lookup_by_name(self):
        assert get_design("sca").name == "sca"

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            get_design("fastest")

    def test_baseline_designs_subset(self):
        assert set(BASELINE_DESIGNS) <= set(ALL_DESIGNS)


class TestPolicyProperties:
    def test_sca_pairs_only_annotated_writes(self):
        sca = get_design("sca")
        assert sca.write_is_paired(counter_atomic=True)
        assert not sca.write_is_paired(counter_atomic=False)

    def test_fca_pairs_everything(self):
        fca = get_design("fca")
        assert fca.write_is_paired(counter_atomic=True)
        assert fca.write_is_paired(counter_atomic=False)

    def test_colocated_never_pairs(self):
        for name in ("co-located", "co-located-cc"):
            policy = get_design(name)
            assert not policy.write_is_paired(True)

    def test_crash_consistency_classification(self):
        """All evaluation designs guarantee crash consistency; the
        unsafe demonstration design does not (paper Figures 3-4)."""
        for design in ALL_DESIGNS:
            assert design.crash_consistent, design.name
        assert not get_design("unsafe").crash_consistent

    def test_separate_counters_only_for_split_layouts(self):
        assert get_design("sca").uses_separate_counters
        assert get_design("fca").uses_separate_counters
        assert not get_design("co-located").uses_separate_counters
        assert not get_design("no-encryption").uses_separate_counters

    def test_bus_widths(self):
        assert get_design("co-located").bus_width_bits == 72
        assert get_design("co-located-cc").bus_width_bits == 72
        assert get_design("sca").bus_width_bits == 64


class TestPolicyValidation:
    def _policy(self, layout, atomicity, integrity=IntegritySpec("none")):
        return DesignPolicy(
            name="x",
            description="",
            layout=layout,
            atomicity=atomicity,
            integrity=integrity,
        )

    def test_rejects_unknown_axis_kinds(self):
        with pytest.raises(ConfigurationError):
            LayoutSpec("stacked")
        with pytest.raises(ConfigurationError):
            AtomicitySpec("fca+sca")
        with pytest.raises(ConfigurationError):
            IntegritySpec("deferred")

    def test_rejects_colocated_with_pairing(self):
        with pytest.raises(ConfigurationError):
            self._policy(LayoutSpec("colocated"), AtomicitySpec("sca"))

    def test_rejects_encryption_features_without_encryption(self):
        with pytest.raises(ConfigurationError):
            LayoutSpec("plain", counter_cache=True)
        with pytest.raises(ConfigurationError):
            self._policy(LayoutSpec("plain"), AtomicitySpec("fca"))

    def test_rejects_magic_counters_that_pair(self):
        with pytest.raises(ConfigurationError):
            AtomicitySpec("fca", magic_counter_persistence=True)

    def test_rejects_tree_without_separate_counters(self):
        with pytest.raises(ConfigurationError):
            self._policy(
                LayoutSpec("colocated", counter_cache=True),
                AtomicitySpec("unpaired"),
                IntegritySpec("eager"),
            )
        with pytest.raises(ConfigurationError):
            self._policy(LayoutSpec("plain"), AtomicitySpec("unpaired"), IntegritySpec("lazy"))

    def test_bus_width_is_derived_from_layout(self):
        colocated = self._policy(LayoutSpec("colocated"), AtomicitySpec("unpaired"))
        split = self._policy(
            LayoutSpec("split", counter_cache=True), AtomicitySpec("sca")
        )
        assert colocated.bus_width_bits == 72
        assert split.bus_width_bits == 64


class TestComposedRegistry:
    def test_names_derive_from_axes(self):
        for design in ALL_DESIGNS + INTEGRITY_DESIGNS:
            assert design.name == design_name(
                design.layout, design.atomicity, design.integrity
            )

    def test_native_mode_gets_plain_bmt_suffix(self):
        assert get_design("fca+bmt").integrity_mode == "eager"
        assert get_design("sca+bmt").integrity_mode == "lazy"

    def test_ablations_get_mode_suffix(self):
        assert get_design("fca+bmt-lazy").integrity_mode == "lazy"
        assert get_design("sca+bmt-eager").integrity_mode == "eager"

    def test_integrity_variant_recomposes_axes(self):
        assert integrity_variant("fca") == "fca+bmt"
        assert integrity_variant("sca") == "sca+bmt"
        assert integrity_variant("fca", "lazy") == "fca+bmt-lazy"
        assert integrity_variant("sca", "eager") == "sca+bmt-eager"

    def test_integrity_variant_idempotent_on_variants(self):
        assert integrity_variant("sca+bmt") == "sca+bmt"
        assert integrity_variant("sca+bmt-eager", "eager") == "sca+bmt-eager"
        assert integrity_variant("fca+bmt-lazy") == "fca+bmt"

    def test_integrity_variant_rejects_unpaired_bases(self):
        for base in ("no-encryption", "ideal", "unsafe", "co-located"):
            with pytest.raises(ConfigurationError):
                integrity_variant(base)

    def test_list_designs_includes_variants_consistently(self):
        names = list_designs(include_integrity=True)
        assert names[:6] == list_designs()
        assert set(names[6:]) == {"fca+bmt", "sca+bmt", "fca+bmt-lazy", "sca+bmt-eager"}
        both = list_designs(include_unsafe=True, include_integrity=True)
        assert "unsafe" in both and "sca+bmt" in both
        assert len(both) == 11
