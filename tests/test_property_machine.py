"""Property-based testing of the whole machine.

Random programs of stores, flushes and barriers run under every
design; the flushed lines' NVM contents must equal the trace builder's
shadow memory, and the run must be deterministic.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import CACHE_LINE_SIZE, fast_config
from repro.sim.machine import Machine
from repro.sim.trace import TraceBuilder

# Programs: list of (line index, value, counter_atomic, flush?).
PROGRAMS = st.lists(
    st.tuples(
        st.integers(0, 15),
        st.integers(0, 2**63 - 1),
        st.booleans(),
        st.booleans(),
    ),
    min_size=1,
    max_size=60,
)

BASE = 0x8000


def build(program):
    builder = TraceBuilder("prop", functional=True)
    flushed = set()
    for line_index, value, counter_atomic, flush in program:
        address = BASE + line_index * CACHE_LINE_SIZE
        builder.store_u64(address, value, counter_atomic=counter_atomic)
        if flush:
            builder.clwb(address)
            builder.ccwb(address)
            flushed.add(address)
    # Final global flush so everything is comparable.
    for line_index in range(16):
        builder.clwb(BASE + line_index * CACHE_LINE_SIZE)
        builder.ccwb(BASE + line_index * CACHE_LINE_SIZE)
    builder.persist_barrier()
    return builder


@pytest.mark.parametrize("design", ["sca", "fca", "co-located-cc", "no-encryption"])
@given(program=PROGRAMS)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_flushed_nvm_matches_shadow(design, program):
    builder = build(program)
    machine = Machine(fast_config(), design)
    machine.run([builder.build()])
    for line_index in range(16):
        address = BASE + line_index * CACHE_LINE_SIZE
        expected = builder.shadow_bytes(address, CACHE_LINE_SIZE)
        actual = machine.hierarchy.read_current(0, address, CACHE_LINE_SIZE)
        assert actual == expected, "mismatch at line %d under %s" % (line_index, design)


@given(program=PROGRAMS)
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_runs_are_deterministic(program):
    results = []
    for _ in range(2):
        builder = build(program)
        machine = Machine(fast_config(), "sca")
        result = machine.run([builder.build()])
        results.append(
            (
                result.stats.runtime_ns,
                result.stats.bytes_written,
                result.stats.bytes_read,
                len(result.journal),
            )
        )
    assert results[0] == results[1]


@given(program=PROGRAMS)
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_journal_counters_match_device_ground_truth(program):
    """For every design with separate counters, the journal's final
    counter state equals the device's per-line encryption ground truth
    for all drained lines — Eq. 4 holds at end of run."""
    builder = build(program)
    machine = Machine(fast_config(), "sca")
    result = machine.run([builder.build()])
    _data, counters = result.journal.final_image()
    device = result.controller.device
    for address, counter in counters.items():
        if not result.controller.address_map.is_data_address(address):
            continue
        stored = device.read_line(address)
        assert stored.encrypted_with == counter
