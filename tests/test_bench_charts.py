"""Tests for the ASCII chart renderers."""

import pytest

from repro.bench.charts import CHART_STYLE, render_bars, render_chart, render_lines
from repro.bench.report import ExperimentResult, Series


def sample_result(experiment="fig12"):
    return ExperimentResult(
        experiment=experiment,
        title="Sample",
        series=[
            Series("sca", {"array": 1.1, "queue": 1.2}),
            Series("fca", {"array": 1.3, "queue": 1.5}),
        ],
    )


class TestBars:
    def test_contains_all_series_and_labels(self):
        text = render_bars(sample_result())
        for token in ("sca", "fca", "array", "queue", "1.100", "1.500"):
            assert token in text

    def test_largest_value_gets_longest_bar(self):
        text = render_bars(sample_result())
        lines = [l for l in text.splitlines() if "█" in l]
        longest = max(lines, key=lambda l: l.count("█"))
        assert "1.500" in longest

    def test_baseline_tick_drawn(self):
        text = render_bars(sample_result(), baseline=1.0)
        assert "<- 1.0" in text

    def test_no_baseline(self):
        text = render_bars(sample_result(), baseline=None)
        assert "<-" not in text

    def test_zero_values_handled(self):
        result = ExperimentResult(
            experiment="x", title="t", series=[Series("a", {"l": 0.0})]
        )
        assert "0.000" in render_bars(result, baseline=None)


class TestLines:
    def test_contains_legend_and_axis(self):
        text = render_lines(sample_result("fig13"))
        assert "A = sca" in text
        assert "B = fca" in text
        assert "+--" in text

    def test_markers_plotted(self):
        text = render_lines(sample_result("fig13"))
        assert "A" in text and "B" in text

    def test_flat_series_does_not_crash(self):
        result = ExperimentResult(
            experiment="x", title="t", series=[Series("a", {"p": 1.0, "q": 1.0})]
        )
        assert "1.000" in render_lines(result)

    def test_empty_labels(self):
        result = ExperimentResult(experiment="x", title="t", series=[Series("a", {})])
        assert render_lines(result) == "t"


class TestDispatch:
    def test_every_experiment_has_a_style(self):
        from repro.bench.experiments import EXPERIMENTS

        for name in EXPERIMENTS:
            assert name in CHART_STYLE

    def test_dispatch_by_experiment(self):
        bars = render_chart(sample_result("fig12"))
        lines = render_chart(sample_result("fig13"))
        assert "█" in bars
        assert "A = sca" in lines

    def test_unknown_experiment_defaults_to_bars(self):
        assert "█" in render_chart(sample_result("mystery"))


class TestCliIntegration:
    def test_chart_flag(self, capsys):
        from repro.bench.cli import main

        assert main(["table2", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
