"""Tests for the CounterAtomic / Plain variable primitives."""

import pytest

from repro.core.primitives import CounterAtomic, PersistentVar, Plain
from repro.errors import AddressError
from repro.utils.bitops import u64_to_bytes


class TestDeclaration:
    def test_counter_atomic_sets_annotation(self):
        var = CounterAtomic(0x1000, name="valid")
        assert var.counter_atomic
        assert var.name == "valid"

    def test_plain_is_not_annotated(self):
        assert not Plain(0x1000).counter_atomic

    def test_alignment_enforced(self):
        with pytest.raises(AddressError):
            CounterAtomic(0x1001)

    def test_negative_address_rejected(self):
        with pytest.raises(AddressError):
            Plain(-8)

    def test_line_address(self):
        assert PersistentVar(address=0x1048).line_address == 0x1040


class TestEncoding:
    def test_encode_decode_round_trip(self):
        var = Plain(0x1000)
        assert PersistentVar.decode(var.encode(12345)) == 12345

    def test_encoding_is_little_endian_u64(self):
        assert Plain(0).encode(1) == u64_to_bytes(1)


class TestTraceIntegration:
    def test_store_var_carries_annotation(self):
        from repro.sim.trace import OpKind, TraceBuilder

        builder = TraceBuilder("t")
        builder.store_var(CounterAtomic(0x1000), 7)
        builder.store_var(Plain(0x1008), 8)
        stores = [op for op in builder.build() if op.kind is OpKind.STORE]
        assert stores[0].counter_atomic is True
        assert stores[1].counter_atomic is False
