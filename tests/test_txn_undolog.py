"""Tests for undo-logging transactions: protocol shape and recovery."""

import pytest

from repro.config import CACHE_LINE_SIZE, fast_config
from repro.crash.injector import CrashInjector
from repro.crash.recovery import RecoveryManager
from repro.errors import TransactionError
from repro.sim.machine import Machine
from repro.sim.trace import OpKind, TraceBuilder
from repro.txn.heap import MemoryLayout
from repro.txn.undolog import UndoLogTransactions, recover_undo_log

OLD = bytes(64)
NEW = bytes([0xAB]) * 64


@pytest.fixture
def setup():
    config = fast_config()
    layout = MemoryLayout.build(config, log_capacity=16)
    builder = TraceBuilder("undo-test")
    txns = UndoLogTransactions(builder, layout.arena(0))
    return config, layout, builder, txns


def data_line(layout, index=0):
    arena = layout.arena(0)
    return arena.heap.alloc_lines(1) if index == 0 else arena.heap.alloc_lines(1)


class TestProtocolShape:
    def test_stage_order(self, setup):
        _config, layout, builder, txns = setup
        target = layout.arena(0).heap.alloc_lines(1)
        txns.run([(target, OLD, NEW)])
        labels = [op.note for op in builder.build() if op.kind is OpKind.LABEL]
        assert labels == ["prepare", "mutate", "commit"]

    def test_commit_write_is_counter_atomic(self, setup):
        _config, layout, builder, txns = setup
        target = layout.arena(0).heap.alloc_lines(1)
        txns.run([(target, OLD, NEW)])
        ca_stores = [
            op for op in builder.build()
            if op.kind is OpKind.STORE and op.counter_atomic
        ]
        # Exactly two counter-atomic stores: arm (valid=1), commit (valid=0).
        assert len(ca_stores) == 2
        assert all(op.address == txns.valid_var.address for op in ca_stores)

    def test_mutate_writes_are_relaxable(self, setup):
        _config, layout, builder, txns = setup
        target = layout.arena(0).heap.alloc_lines(1)
        txns.run([(target, OLD, NEW)])
        target_stores = [
            op for op in builder.build()
            if op.kind is OpKind.STORE and op.address == target
        ]
        assert target_stores
        assert not any(op.counter_atomic for op in target_stores)

    def test_ccwb_precedes_arm(self, setup):
        """The paper's ordering: counters of the log must be persistent
        before the valid flag flips."""
        _config, layout, builder, txns = setup
        target = layout.arena(0).heap.alloc_lines(1)
        txns.run([(target, OLD, NEW)])
        ops = builder.build().ops
        first_ccwb = next(i for i, op in enumerate(ops) if op.kind is OpKind.CCWB)
        arm = next(
            i for i, op in enumerate(ops)
            if op.kind is OpKind.STORE and op.counter_atomic
        )
        assert first_ccwb < arm

    def test_barriers_present(self, setup):
        _config, layout, builder, txns = setup
        target = layout.arena(0).heap.alloc_lines(1)
        txns.run([(target, OLD, NEW)])
        fences = [op for op in builder.build() if op.kind is OpKind.SFENCE]
        assert len(fences) == 4  # prepare, arm, mutate, commit

    def test_empty_transaction_emits_no_protocol(self, setup):
        _config, _layout, builder, txns = setup
        txns.begin()
        txns.commit()
        kinds = {op.kind for op in builder.build()}
        assert OpKind.STORE not in kinds


class TestCircularLog:
    def test_entries_advance_around_the_ring(self, setup):
        _config, layout, builder, txns = setup
        target = layout.arena(0).heap.alloc_lines(1)
        txns.run([(target, OLD, NEW)])
        txns.run([(target, NEW, OLD)])
        stores = [op.address for op in builder.build() if op.kind is OpKind.STORE]
        log_base = layout.arena(0).log_base
        # The second transaction's log entry is at slot 1, not slot 0.
        assert log_base + 128 in stores

    def test_wraparound(self, setup):
        _config, layout, builder, txns = setup
        target = layout.arena(0).heap.alloc_lines(1)
        capacity = layout.arena(0).log_capacity
        for i in range(capacity + 2):
            txns.run([(target, OLD, NEW)])
        assert txns.committed == capacity + 2


class TestValidation:
    def test_nesting_rejected(self, setup):
        _config, _layout, _builder, txns = setup
        txns.begin()
        with pytest.raises(TransactionError):
            txns.begin()

    def test_commit_without_begin_rejected(self, setup):
        _config, _layout, _builder, txns = setup
        with pytest.raises(TransactionError):
            txns.commit()

    def test_partial_line_rejected(self, setup):
        _config, _layout, _builder, txns = setup
        txns.begin()
        with pytest.raises(TransactionError):
            txns.write_line(0x1000, b"short", NEW)

    def test_unaligned_target_rejected(self, setup):
        _config, _layout, _builder, txns = setup
        txns.begin()
        with pytest.raises(TransactionError):
            txns.write_line(0x1008, OLD, NEW)

    def test_capacity_overflow_rejected(self, setup):
        _config, layout, _builder, txns = setup
        arena = layout.arena(0)
        txns.begin()
        for i in range(arena.log_capacity):
            txns.write_line(arena.heap.alloc_lines(1), OLD, NEW)
        with pytest.raises(TransactionError):
            txns.write_line(arena.heap.alloc_lines(1), OLD, NEW)


class TestRecovery:
    def _run_and_recover(self, setup, crash_fraction):
        config, layout, builder, txns = setup
        target = layout.arena(0).heap.alloc_lines(1)
        txns.run([(target, OLD, NEW)])
        result = Machine(config, "sca").run([builder.build()])
        injector = CrashInjector(result)
        crash_ns = result.stats.runtime_ns * crash_fraction + 0.001
        recovered = RecoveryManager(config.encryption).recover(
            injector.crash_at(crash_ns)
        )
        restored = recover_undo_log(recovered, layout.arena(0))
        return target, recovered, restored

    def test_recovery_after_completion_is_noop(self, setup):
        target, recovered, restored = self._run_and_recover(setup, 1.1)
        assert restored == []
        assert recovered.read(target, 64) == NEW

    def test_recovery_before_anything_is_noop(self, setup):
        target, recovered, restored = self._run_and_recover(setup, 0.0)
        assert restored == []
        assert recovered.read(target, 64) == OLD
