"""Traffic generator: spec validation, determinism, load shapes."""

import dataclasses

import pytest

from repro.errors import ServiceError
from repro.service import (
    LoadShape,
    TrafficSpec,
    generate_operations,
    stream_fingerprint,
)
from repro.service.traffic import OP_KINDS


class TestSpecValidation:
    def test_defaults_are_valid(self):
        spec = TrafficSpec()
        assert spec.tenants == 4 and spec.mode == "open"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tenants": 0},
            {"operations": 0},
            {"mode": "half-open"},
            {"arrival": "pareto"},
            {"rate_ops_per_us": 0.0},
            {"burst_fraction": 0.0},
            {"burst_factor": 0.5},
            {"burst_factor": 5.0, "burst_fraction": 0.25},
            {"clients": 0},
            {"think_ns": -1.0},
            {"zipf_alpha": -0.1},
            {"keyspace": 1},
            {"mix": (1.0, 1.0, 1.0)},
            {"mix": (1.0, -0.1, 0.0, 0.0)},
            {"mix": (0.0, 0.0, 0.0, 0.0)},
            {"tenant_weights": (1.0,)},
            {"tenant_weights": (0.0, 0.0, 0.0, 0.0)},
            {"scan_span": 0},
        ],
    )
    def test_bad_specs_are_rejected(self, kwargs):
        with pytest.raises(ServiceError):
            TrafficSpec(**kwargs)

    def test_as_dict_round_trips_every_field(self):
        spec = TrafficSpec(tenants=2, tenant_weights=(3.0, 1.0), mode="closed")
        document = spec.as_dict()
        rebuilt = TrafficSpec(
            **{
                key: tuple(value) if isinstance(value, list) else value
                for key, value in document.items()
            }
        )
        assert rebuilt == spec
        assert set(document) == {
            f.name for f in dataclasses.fields(TrafficSpec)
        }


class TestDeterminism:
    def test_same_seed_same_stream(self):
        spec = TrafficSpec(operations=120, seed=9)
        first = generate_operations(spec)
        second = generate_operations(spec)
        assert [op.as_tuple() for op in first] == [op.as_tuple() for op in second]
        assert stream_fingerprint(first) == stream_fingerprint(second)

    def test_different_seeds_differ(self):
        base = TrafficSpec(operations=120, seed=9)
        other = dataclasses.replace(base, seed=10)
        assert stream_fingerprint(generate_operations(base)) != stream_fingerprint(
            generate_operations(other)
        )

    def test_fingerprint_covers_arrivals(self):
        base = TrafficSpec(operations=60, seed=3, rate_ops_per_us=0.25)
        faster = dataclasses.replace(base, rate_ops_per_us=1.0)
        assert stream_fingerprint(generate_operations(base)) != stream_fingerprint(
            generate_operations(faster)
        )


class TestLoadShapes:
    def test_open_loop_arrivals_increase(self):
        operations = generate_operations(TrafficSpec(operations=100, seed=1))
        arrivals = [op.arrival_ns for op in operations]
        assert all(a is not None for a in arrivals)
        assert arrivals == sorted(arrivals)
        assert all(op.client is None for op in operations)

    def test_bursty_arrivals_cluster_more_than_poisson(self):
        spec = TrafficSpec(operations=400, seed=5, arrival="bursty")
        bursty = generate_operations(spec)
        poisson = generate_operations(
            dataclasses.replace(spec, arrival="poisson")
        )

        def gap_cv(ops):
            gaps = [
                b.arrival_ns - a.arrival_ns for a, b in zip(ops, ops[1:])
            ]
            mean = sum(gaps) / len(gaps)
            var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
            return var**0.5 / mean

        # ON/OFF modulation makes inter-arrival gaps more variable than
        # the exponential baseline (CV 1.0); seeded, so not flaky.
        assert gap_cv(bursty) > gap_cv(poisson)

    def test_closed_loop_carries_clients_not_arrivals(self):
        spec = TrafficSpec(operations=50, seed=2, mode="closed", clients=4)
        operations = generate_operations(spec)
        assert all(op.arrival_ns is None for op in operations)
        assert {op.client for op in operations} == {0, 1, 2, 3}

    def test_zipf_skew_concentrates_on_head_keys(self):
        spec = TrafficSpec(operations=500, seed=11, zipf_alpha=1.2, keyspace=64)
        skewed = generate_operations(spec)
        uniform = generate_operations(
            dataclasses.replace(spec, zipf_alpha=0.0)
        )

        def head_share(ops):
            hot = sum(1 for op in ops if op.key <= 4)
            return hot / len(ops)

        assert head_share(skewed) > 2 * head_share(uniform)

    def test_tenant_weights_shift_traffic(self):
        spec = TrafficSpec(
            operations=400, seed=4, tenants=2, tenant_weights=(9.0, 1.0)
        )
        operations = generate_operations(spec)
        tenant0 = sum(1 for op in operations if op.tenant == 0)
        assert tenant0 > 0.75 * len(operations)

    def test_mix_respects_zero_weights(self):
        spec = TrafficSpec(operations=200, seed=6, mix=(1.0, 0.0, 0.0, 0.0))
        operations = generate_operations(spec)
        assert {op.kind for op in operations} == {"put"}

    def test_scans_carry_inclusive_bounded_ranges(self):
        spec = TrafficSpec(
            operations=300, seed=8, mix=(0.2, 0.2, 0.1, 0.5), keyspace=32
        )
        scans = [op for op in generate_operations(spec) if op.kind == "scan"]
        assert scans, "the mix should have produced scans"
        for op in scans:
            assert op.key <= op.key_hi <= spec.keyspace

    def test_kinds_are_canonical(self):
        operations = generate_operations(TrafficSpec(operations=200, seed=12))
        assert {op.kind for op in operations} <= set(OP_KINDS)


class TestShapedLoad:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "sawtooth"},
            {"start_factor": 0.0},
            {"end_factor": -1.0},
            {"peak_factor": 0.0},
            {"duration_us": 0.0},
            {"spike_width_us": 0.0},
            {"spike_start_us": -1.0},
            {"kind": "step", "steps": 1},
        ],
    )
    def test_bad_shapes_are_rejected(self, kwargs):
        with pytest.raises(ServiceError):
            LoadShape(**kwargs)

    def test_shapes_are_open_loop_only(self):
        with pytest.raises(ServiceError):
            TrafficSpec(mode="closed", shape=LoadShape(kind="ramp"))

    def test_step_factor_staircase(self):
        shape = LoadShape(
            kind="step", start_factor=1.0, end_factor=4.0, duration_us=90.0, steps=4
        )
        assert shape.factor(0.0) == 1.0
        assert shape.factor(30.0) == 2.0
        assert shape.factor(60.0) == 3.0
        assert shape.factor(89.0) == 4.0
        assert shape.factor(500.0) == 4.0

    def test_ramp_factor_is_linear_then_holds(self):
        shape = LoadShape(
            kind="ramp", start_factor=1.0, end_factor=5.0, duration_us=100.0
        )
        assert shape.factor(0.0) == 1.0
        assert shape.factor(50.0) == pytest.approx(3.0)
        assert shape.factor(100.0) == 5.0
        assert shape.factor(1000.0) == 5.0

    def test_spike_factor_only_inside_window(self):
        shape = LoadShape(
            kind="spike", peak_factor=6.0, spike_start_us=10.0, spike_width_us=5.0
        )
        assert shape.factor(9.9) == 1.0
        assert shape.factor(10.0) == 6.0
        assert shape.factor(14.9) == 6.0
        assert shape.factor(15.0) == 1.0

    def test_unit_constant_shape_is_a_noop_envelope(self):
        base = TrafficSpec(operations=150, seed=7)
        shaped = dataclasses.replace(base, shape=LoadShape())
        assert stream_fingerprint(generate_operations(base)) == stream_fingerprint(
            generate_operations(shaped)
        )

    def test_shape_changes_the_fingerprint(self):
        base = TrafficSpec(operations=150, seed=7)
        shaped = dataclasses.replace(
            base, shape=LoadShape(kind="ramp", end_factor=8.0)
        )
        assert stream_fingerprint(generate_operations(base)) != stream_fingerprint(
            generate_operations(shaped)
        )

    def test_ramp_compresses_late_arrival_gaps(self):
        spec = TrafficSpec(
            operations=400,
            seed=13,
            shape=LoadShape(
                kind="ramp", start_factor=1.0, end_factor=8.0, duration_us=2000.0
            ),
        )
        operations = generate_operations(spec)
        gaps = [
            b.arrival_ns - a.arrival_ns
            for a, b in zip(operations, operations[1:])
        ]
        quarter = len(gaps) // 4
        early = sum(gaps[:quarter]) / quarter
        late = sum(gaps[-quarter:]) / quarter
        # An 8x ramp-up makes late arrivals markedly denser; seeded.
        assert late < 0.7 * early

    def test_spike_composes_over_bursty_arrivals(self):
        spec = TrafficSpec(
            operations=400,
            seed=17,
            arrival="bursty",
            shape=LoadShape(
                kind="spike",
                peak_factor=10.0,
                spike_start_us=5.0,
                spike_width_us=20.0,
            ),
        )
        operations = generate_operations(spec)
        window = [
            op
            for op in operations
            if 5_000.0 <= op.arrival_ns < 25_000.0
        ]
        total_span_us = operations[-1].arrival_ns / 1000.0
        # The 20 us spike window holds far more than its share of time.
        assert len(window) > 2 * len(operations) * (20.0 / total_span_us)
