"""Property-based testing of the sharded memory system.

Two families of properties:

* **Address algebra** — the :class:`~repro.nvm.address.ShardMap`
  interleave is a bijection between the global data space and the
  disjoint union of the shards' local spaces, for *arbitrary* shard
  counts (not just the power-of-two deployments), and the batched
  dispatcher agrees with the per-line translation exactly.
* **Crash durability** — on a machine sharded 2 and 4 ways, a uniform
  power failure at *any* instant (Hypothesis picks the nanosecond, not
  a curated sample) recovers every crash-consistent design to a
  consistent transaction prefix, exactly as the singleton contract
  promises.  The coordinator's merged journal is what makes the stock
  injector/recovery stack work unchanged here.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.harness import run_workload
from repro.config import KB, fast_config
from repro.crash.injector import CrashInjector
from repro.crash.recovery import RecoveryManager
from repro.nvm.address import SHARD_GRANULE, ShardMap
from repro.workloads.base import WorkloadParams

# Crash-consistent designs the sharded sweep must preserve verbatim.
SAFE_DESIGNS = ["sca", "fca", "ideal", "co-located", "co-located-cc", "no-encryption"]

PARAMS = WorkloadParams(operations=8, footprint_bytes=8 * KB)

SHARD_COUNTS = st.integers(min_value=1, max_value=9)


def shard_map(shards: int) -> ShardMap:
    # One MB per shard keeps every count's geometry valid and divisible.
    return ShardMap(memory_size_bytes=shards * 1024 * 1024, shards=shards)


class TestShardMapBijection:
    @given(shards=SHARD_COUNTS, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_global_round_trip(self, shards, data):
        mapping = shard_map(shards)
        address = data.draw(
            st.integers(min_value=0, max_value=mapping.data_capacity_bytes - 1)
        )
        shard, local = mapping.to_local(address)
        assert 0 <= shard < shards
        assert mapping.to_global(shard, local) == address
        assert mapping.shard_of(address) == shard

    @given(shards=SHARD_COUNTS, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_local_round_trip(self, shards, data):
        mapping = shard_map(shards)
        local_capacity = mapping.data_capacity_bytes // shards
        shard = data.draw(st.integers(min_value=0, max_value=shards - 1))
        local = data.draw(st.integers(min_value=0, max_value=local_capacity - 1))
        assert mapping.to_local(mapping.to_global(shard, local)) == (shard, local)

    @given(shards=SHARD_COUNTS, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_interleave_is_granular(self, shards, data):
        """All bytes of one granule land on one shard, contiguously."""
        mapping = shard_map(shards)
        groups = mapping.data_capacity_bytes // SHARD_GRANULE
        group = data.draw(st.integers(min_value=0, max_value=groups - 1))
        base = group * SHARD_GRANULE
        first = mapping.to_local(base)
        last = mapping.to_local(base + SHARD_GRANULE - 1)
        assert first[0] == last[0] == group % shards
        assert last[1] - first[1] == SHARD_GRANULE - 1

    @given(
        shards=SHARD_COUNTS,
        lines=st.lists(st.integers(min_value=0, max_value=4095), max_size=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_dispatch_batch_matches_per_line_translation(self, shards, lines):
        mapping = shard_map(shards)
        addresses = [line * 64 for line in lines]
        buckets = mapping.dispatch_batch(addresses)
        reference = [[] for _ in range(shards)]
        for index, address in enumerate(addresses):
            shard, local = mapping.to_local(address)
            reference[shard].append((index, local))
        assert buckets == reference

    def test_dispatch_batch_rejects_out_of_range(self):
        mapping = shard_map(2)
        from repro.errors import AddressError

        with pytest.raises(AddressError):
            mapping.dispatch_batch([0, mapping.data_capacity_bytes])


class _SweepFixture:
    """One simulated run per (design, shards), shared across examples."""

    def __init__(self):
        self._cache = {}

    def get(self, design: str, shards: int):
        key = (design, shards)
        if key not in self._cache:
            outcome = run_workload(
                design, "array", config=fast_config(shards=shards), params=PARAMS
            )
            self._cache[key] = (
                outcome.result,
                outcome.validator(0),
                CrashInjector(outcome.result),
                RecoveryManager(outcome.result.config.encryption),
            )
        return self._cache[key]


_SWEEPS = _SweepFixture()


@pytest.mark.parametrize("shards", [2, 4])
@pytest.mark.parametrize("design", SAFE_DESIGNS)
@given(fraction=st.floats(min_value=0.0, max_value=1.0))
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_crash_at_any_instant_recovers_a_prefix(design, shards, fraction):
    result, validator, injector, manager = _SWEEPS.get(design, shards)
    crash_ns = fraction * (result.stats.runtime_ns + 1.0)
    image = injector.crash_at(crash_ns)
    recovered = manager.recover(image, encrypted=result.policy.encrypts)
    verdict = validator.classify(recovered)
    assert verdict.consistent, (
        "%s x%d inconsistent at %.1f ns: detected=%s silent=%s"
        % (design, shards, crash_ns, verdict.detected, verdict.silent)
    )
