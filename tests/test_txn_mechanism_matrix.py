"""Cross matrix: every workload x both log mechanisms x crash sweeps.

The integration crash tests cover the common combinations; this matrix
fills in the rest so a regression in any (workload, mechanism, design)
cell is caught.
"""

import pytest

from repro.bench.harness import run_workload
from repro.config import KB
from repro.crash.checker import sweep_crash_points
from repro.workloads.base import WorkloadParams

PARAMS = WorkloadParams(operations=6, footprint_bytes=8 * KB)
WORKLOADS = ["array", "queue", "hash", "btree", "rbtree"]


class TestRedoMatrix:
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_redo_crash_consistency(self, workload):
        outcome = run_workload("sca", workload, mechanism="redo", params=PARAMS)
        report = sweep_crash_points(outcome.result, outcome.validator(0), max_points=50)
        failure = report.first_failure()
        assert report.all_consistent, (
            "%s/redo first failure at %.1f: %s"
            % (workload, failure.crash_ns, failure.problems[:1])
        )

    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_redo_final_state_matches_model(self, workload):
        outcome = run_workload("sca", workload, mechanism="redo", params=PARAMS)
        hierarchy = outcome.result.hierarchy
        model = outcome.runs[0].final_model
        for line in model.touched_lines():
            assert hierarchy.read_current(0, line, 64) == model.line(line)


class TestUndoRemainingCells:
    @pytest.mark.parametrize("workload", ["btree", "hash"])
    @pytest.mark.parametrize("design", ["co-located", "ideal"])
    def test_other_designs_recover(self, workload, design):
        outcome = run_workload(design, workload, params=PARAMS)
        report = sweep_crash_points(outcome.result, outcome.validator(0), max_points=40)
        assert report.all_consistent


class TestMechanismTrafficDifference:
    def test_redo_and_undo_write_similar_totals(self):
        """Both mechanisms log every touched line once; their traffic
        should be in the same ballpark (redo adds a write-back stage
        record flip, undo an arm flip)."""
        undo = run_workload("sca", "array", mechanism="undo", params=PARAMS)
        redo = run_workload("sca", "array", mechanism="redo", params=PARAMS)
        ratio = redo.stats.bytes_written / undo.stats.bytes_written
        assert 0.7 < ratio < 1.4
