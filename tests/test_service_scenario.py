"""Service scenarios: crash/recover/SLO reports, resume, CLI, determinism.

Covers the PR's two determinism satellites end to end: a fixed seed
produces a bit-identical operation stream, latency percentiles and SLO
report across repeated runs *and* across a snapshot/resume of the
underlying simulation.
"""

import json

import pytest

from repro.bench.cli import main as cli_main
from repro.config import fast_config
from repro.errors import ServiceError
from repro.service import (
    ServiceJob,
    ServiceRunner,
    ServiceValidator,
    ServiceWorkload,
    TrafficSpec,
    attribute_latencies,
    generate_operations,
    run_service_job,
    summarize_tenants,
)
from repro.sim.machine import Machine
from repro.sim.snapshot import (
    SnapshotStore,
    result_fingerprint,
    run_with_checkpoints,
)

SPEC = TrafficSpec(tenants=2, operations=60, seed=21, keyspace=32)


class TestRunServiceJob:
    def test_crash_free_report_shape(self):
        document = run_service_job(
            ServiceJob(design="sca", traffic=SPEC, crash=False)
        )
        assert document["status"] == "crash-free"
        assert document["crash"] is None
        assert document["transactions"] > 0
        assert len(document["tenants"]) == SPEC.tenants
        totals = document["totals"]
        assert totals["ops"] == SPEC.operations
        assert totals["acked"] == SPEC.operations
        assert totals["latency"]["count"] == SPEC.operations
        assert totals["latency"]["p50_ns"] <= totals["latency"]["p99_ns"]

    def test_crash_recovers_consistent_without_acked_loss(self):
        document = run_service_job(ServiceJob(design="sca", traffic=SPEC))
        assert document["status"] == "consistent"
        assert document["consistent"] is True
        crash = document["crash"]
        assert 0 < crash["crash_ns"] < document["runtime_ns"]
        assert crash["silent"] == []
        totals = document["totals"]
        assert totals["acked_lost"] == 0
        assert 0 < totals["acked"] < totals["ops"]
        for tenant in document["tenants"]:
            durability = tenant["durability"]
            assert durability["consistent"] is True
            assert durability["recovered_prefix"] is not None

    def test_unsafe_design_loses_acknowledged_writes(self):
        document = run_service_job(ServiceJob(design="unsafe", traffic=SPEC))
        assert document["status"] in ("detected", "silent")
        assert document["consistent"] is False
        assert document["totals"]["acked_lost"] > 0

    def test_crash_composes_with_fault_model(self):
        document = run_service_job(
            ServiceJob(design="sca", traffic=SPEC, fault="bitflip-data")
        )
        # A scribbled data line is at worst *detected* by SCA's
        # decryption/checksum channels — never silently consistent
        # with lost acks on a crash-consistent design.
        assert document["status"] in ("consistent", "detected")
        assert document["crash"]["fault_events"]

    def test_crash_composes_with_nested_crash_plan(self):
        document = run_service_job(
            ServiceJob(design="sca", traffic=SPEC, nested_crash=True)
        )
        assert document["status"] == "consistent"
        assert document["totals"]["acked_lost"] == 0

    def test_bad_crash_fraction_is_loud(self):
        with pytest.raises(ServiceError):
            run_service_job(
                ServiceJob(design="sca", traffic=SPEC, crash_fraction=1.5)
            )


class TestServiceRunner:
    def test_journal_resume_skips_finished_designs(self, tmp_path):
        jobs = [
            ServiceJob(design=design, traffic=SPEC) for design in ("sca", "fca")
        ]
        first = ServiceRunner(jobs, journal_dir=str(tmp_path)).run()
        assert first.resumed_jobs == 0
        assert len(first.results) == 2
        second = ServiceRunner(jobs, journal_dir=str(tmp_path)).run()
        assert second.resumed_jobs == 2
        assert [r["key"] for r in second.results] == [
            r["key"] for r in first.results
        ]

    def test_report_renders_every_design_and_tenant(self):
        report = ServiceRunner(
            [ServiceJob(design="sca", traffic=SPEC)]
        ).run()
        rendered = report.render()
        assert "sca" in rendered
        assert "p99_us" in rendered
        assert rendered.count("\nsca ") >= SPEC.tenants
        assert report.durability_violations == 0

    def test_empty_runner_is_rejected(self):
        with pytest.raises(ServiceError):
            ServiceRunner([])


class TestServeCLI:
    def test_acceptance_command_exits_zero_with_report(self, tmp_path, capsys):
        json_path = tmp_path / "slo.json"
        code = cli_main(
            [
                "serve",
                "--designs", "sca,fca",
                "--tenants", "2",
                "--ops", "40",
                "--crash-mid-traffic",
                "--json", str(json_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "sca" in out and "fca" in out
        document = json.loads(json_path.read_text())
        assert len(document["results"]) == 2
        for result in document["results"]:
            assert result["totals"]["acked_lost"] == 0
            assert result["crash"]["silent"] == []

    def test_unknown_design_exits_two(self, capsys):
        code = cli_main(["serve", "--designs", "nonsense"])
        assert code == 2
        assert "nonsense" in capsys.readouterr().err


class TestDeterminism:
    def test_same_seed_bit_identical_report(self):
        job = ServiceJob(design="sca", traffic=SPEC)
        first = run_service_job(job)
        second = run_service_job(job)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_slo_report_survives_snapshot_resume(self, tmp_path):
        """Cut the simulation mid-run, snapshot to disk, resume in a
        fresh machine: the finished result — and the whole SLO report
        derived from it — is bit-identical to the uninterrupted run."""
        config = fast_config()
        spec = TrafficSpec(tenants=2, operations=40, seed=13, keyspace=16)
        operations = generate_operations(spec)

        def build_run():
            workload = ServiceWorkload(config, spec.tenants)
            workload.execute(generate_operations(spec))
            return workload.build_run(operations)

        def slo_document(run, result):
            timings = attribute_latencies(run, result.txn_end_times[0], spec)
            slos = summarize_tenants(spec, timings)
            return [slo.as_dict(result.stats.runtime_ns) for slo in slos]

        baseline_run = build_run()
        baseline = Machine(config, "sca")
        baseline_result = baseline.run([baseline_run.trace])
        expected_fingerprint = result_fingerprint(baseline_result)
        expected_slos = slo_document(baseline_run, baseline_result)
        cut = baseline.events_executed // 2
        assert cut >= 1

        resumed_run = build_run()
        partial = Machine(config, "sca")
        partial.begin([resumed_run.trace])
        for _ in range(cut):
            partial.step()
        store = SnapshotStore(str(tmp_path), code="svc")
        store.save(partial.get_state())
        resumed = Machine(config, "sca")
        result, stats = run_with_checkpoints(
            resumed, [resumed_run.trace], store=store
        )
        assert stats["restored"] == 1
        assert result_fingerprint(result) == expected_fingerprint
        assert slo_document(resumed_run, result) == expected_slos

    def test_validator_verdict_is_seed_stable(self):
        """The crash triage (not just timing) is deterministic."""
        job = ServiceJob(design="fca", traffic=SPEC, crash_fraction=0.3)
        first = run_service_job(job)
        second = run_service_job(job)
        assert first["crash"] == second["crash"]
        assert first["stream_fingerprint"] == second["stream_fingerprint"]


class TestValidatorMisuse:
    def test_txn_end_times_length_checked(self):
        workload = ServiceWorkload(fast_config(), tenants=2)
        spec = TrafficSpec(tenants=2, operations=10, seed=1, keyspace=16)
        workload.execute(generate_operations(spec))
        run = workload.build_run(generate_operations(spec))
        with pytest.raises(ServiceError):
            ServiceValidator(run, txn_end_times=[1.0, 2.0])
