"""Property test: with a Bonsai tree, NVM corruption never goes silent.

Hypothesis sweeps every NVM-corrupting fault model against crash points
of ``+bmt`` runs.  Whenever the oracle proves the recovered state wrong
and ordinary recovery did not notice (the ``silent-corruption`` bucket),
the post-crash tree verification — root-register walk plus ECC-lane tag
sweep, both over post-crash-visible state only — must flag the image.
Conversely, a capture with no fault events must verify clean.
"""

from functools import lru_cache

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.harness import run_workload
from repro.config import KB, fast_config
from repro.crash.injector import CrashInjector
from repro.crash.recovery import RecoveryManager
from repro.faults.registry import make_fault_model
from repro.integrity import repair_image, verify_image
from repro.workloads.base import WorkloadParams

DESIGNS = ("fca+bmt", "sca+bmt")
#: Every registered fault model that mutates NVM contents.
CORRUPTING_FAULTS = (
    "torn-data",
    "torn-counter",
    "bitflip-data",
    "bitflip-counter",
    "counter-corruption",
)


@lru_cache(maxsize=None)
def outcome_for(design):
    return run_workload(
        design,
        "array",
        config=fast_config(),
        params=WorkloadParams(operations=6, seed=7, footprint_bytes=8 * KB),
    )


@lru_cache(maxsize=None)
def crash_times_for(design):
    injector = CrashInjector(outcome_for(design).result)
    return tuple(injector.interesting_times(limit=8))


@given(data=st.data())
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_nvm_corruption_never_goes_silent_under_bmt(data):
    design = data.draw(st.sampled_from(DESIGNS), label="design")
    fault = data.draw(st.sampled_from(CORRUPTING_FAULTS), label="fault")
    seed = data.draw(st.integers(min_value=0, max_value=99), label="seed")
    times = crash_times_for(design)
    crash_ns = data.draw(st.sampled_from(times), label="crash_ns")
    outcome = outcome_for(design)
    injector = CrashInjector(outcome.result)
    image, events = injector.crash_with_faults(
        crash_ns, [make_fault_model(fault)], seed=seed
    )
    report = verify_image(image, outcome.result.config)
    if not events:
        assert report.clean, "no fault events but tree flagged: %s" % report.describe()
        return
    manager = RecoveryManager(outcome.result.config.encryption)
    try:
        recovered = manager.recover(image, encrypted=outcome.result.policy.encrypts)
        verdict = outcome.validator(0).classify(recovered)
    except Exception:
        return  # recovery crashed loudly: a detection, not silence
    if verdict.consistent or verdict.detected:
        return  # nothing silent to catch
    # The silent-corruption bucket: the tree must have flagged it.
    assert not report.clean, (
        "silent corruption escaped the tree: design=%s fault=%s crash=%.1fns"
        % (design, fault, crash_ns)
    )


@pytest.mark.parametrize("design", DESIGNS)
def test_clean_crash_images_verify_clean(design):
    outcome = outcome_for(design)
    injector = CrashInjector(outcome.result)
    for crash_ns in crash_times_for(design):
        report = verify_image(injector.crash_at(crash_ns), outcome.result.config)
        assert report.clean, "clean image flagged at %.1fns: %s" % (
            crash_ns,
            report.describe(),
        )


def test_torn_counter_detected_and_repaired():
    """The Phoenix + Osiris path: a torn counter line moves the root;
    the bounded counter search restores it and the reseal verifies."""
    outcome = outcome_for("fca+bmt")
    injector = CrashInjector(outcome.result)
    model = make_fault_model("torn-counter")
    flagged = 0
    for crash_ns in crash_times_for("fca+bmt"):
        image, events = injector.crash_with_faults(crash_ns, [model], seed=3)
        if not events:
            continue
        report = verify_image(image, outcome.result.config)
        if report.clean:
            continue  # the tear landed on an identical payload
        flagged += 1
        recovery, after = repair_image(image, outcome.result.config)
        assert after.clean, "repair left a dirty image: %s" % after.describe()
        assert recovery.recovered >= 1
    assert flagged >= 1, "no crash point exercised the torn-counter path"
