"""Chaos harness: seeded fault plans and the exactly-once property."""

import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.chaos import (
    FAULT_KINDS,
    ChaosPlan,
    render_chaos_report,
    run_chaos_campaign,
)
from repro.bench.parallel import SweepExecutor
from repro.crash.campaign import CampaignSpec


def triple(item):
    return item * 3


class TestChaosPlan:
    def test_same_seed_same_plan(self):
        first = ChaosPlan.generate(99, n_jobs=8)
        second = ChaosPlan.generate(99, n_jobs=8)
        assert first == second
        assert ChaosPlan.generate(100, n_jobs=8) != first

    def test_plan_roundtrips_through_dict(self):
        plan = ChaosPlan.generate(5, n_jobs=6, intensity=2)
        assert ChaosPlan.from_dict(plan.as_dict()) == plan

    def test_injected_counts_cover_requested_kinds(self):
        plan = ChaosPlan.generate(3, n_jobs=10, kinds=("kill", "corrupt"))
        counts = plan.injected_counts()
        assert counts["kill"] == 1
        assert counts["corrupt"] == 1
        assert counts["stall"] == 0
        assert counts["duplicate"] == 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos fault"):
            ChaosPlan.generate(1, n_jobs=4, kinds=("meteor",))

    def test_empty_batch_yields_empty_plan(self):
        assert ChaosPlan.generate(1, n_jobs=0).faults_by_job == {}


class TestExactlyOnceProperty:
    @settings(max_examples=5, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2 ** 16),
        kinds=st.sets(st.sampled_from(FAULT_KINDS), min_size=1).map(
            lambda chosen: tuple(sorted(chosen))
        ),
    )
    def test_random_fault_schedules_never_lose_or_duplicate(self, seed, kinds):
        items = [1, 2, 3, 4]
        plan = ChaosPlan.generate(seed, len(items), kinds=kinds)
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as queue_dir:
            executor = SweepExecutor(
                workers=2,
                backend="workqueue",
                queue_dir=queue_dir,
                lease_timeout_s=0.5,
                max_lease_failures=len(kinds) + 2,
                chaos_plan=plan,
            )
            results = executor.map(triple, items)
            stats = executor.stats()
        assert results == [3, 6, 9, 12]
        assert stats["backend_fallbacks"] == 0
        published = stats["results_published"] + stats["results_reused"]
        assert published == len(items)
        assert stats["jobs_lost"] == 0
        assert stats["poison_jobs"] == 0


class TestCampaignOracle:
    def test_chaos_campaign_matches_serial_oracle(self, tmp_path):
        spec = CampaignSpec(
            workloads=("array",),
            designs=("sca", "unsafe"),
            mechanisms=("undo",),
            faults=("torn-data", "bitflip-data"),
            crash_points=4,
            seed=7,
            operations=6,
        )
        document = run_chaos_campaign(
            spec,
            workers=2,
            queue_dir=str(tmp_path / "q"),
            lease_timeout_s=1.0,
            chaos_seed=1234,
        )
        assert document["ok"], document["problems"]
        assert document["chaos_totals"] == document["oracle_totals"]
        stats = document["executor"]
        published = stats["results_published"] + stats["results_reused"]
        assert published == document["jobs"]
        assert stats["jobs_lost"] == 0
        report = render_chaos_report(document)
        assert "exactly-once holds" in report
        assert "bit-identical" in report
