"""Perf document comparison: ratios, regressions, warn-and-skip."""

from repro.bench.perf import compare_documents, render_comparison


def _doc(kernels, sweep=None):
    document = {"kernels": kernels}
    if sweep is not None:
        document["sweep"] = sweep
    return document


class TestCompareDocuments:
    def test_ratio_and_regression_flag(self):
        comparison = compare_documents(
            _doc({"aes": {"ns_per_op": 40.0}, "xor": {"ns_per_op": 1.0}}),
            _doc({"aes": {"ns_per_op": 10.0}, "xor": {"ns_per_op": 2.0}}),
            regression_threshold=3.0,
        )
        assert comparison["kernels"]["aes"]["ratio"] == 4.0
        assert comparison["kernels"]["aes"]["regression"] is True
        assert comparison["kernels"]["xor"]["ratio"] == 0.5
        assert "regression" not in comparison["kernels"]["xor"]
        assert comparison["regressions"] == ["aes"]
        assert comparison["warnings"] == []

    def test_kernel_in_only_one_document_warns_and_skips(self):
        comparison = compare_documents(
            _doc({"shared": {"ns_per_op": 1.0}, "fresh": {"ns_per_op": 2.0}}),
            _doc({"shared": {"ns_per_op": 1.0}, "retired": {"ns_per_op": 3.0}}),
        )
        assert list(comparison["kernels"]) == ["shared"]
        assert comparison["new_kernels"] == ["fresh"]
        assert comparison["removed_kernels"] == ["retired"]
        warnings = comparison["warnings"]
        assert any("'fresh'" in w and "current" in w for w in warnings)
        assert any("'retired'" in w and "baseline" in w for w in warnings)

    def test_malformed_kernel_entry_warns_instead_of_raising(self):
        comparison = compare_documents(
            _doc({"good": {"ns_per_op": 2.0}, "bad": {"ns_per_op": "NaN?"}}),
            _doc({"good": {"ns_per_op": 1.0}, "bad": {}}),
        )
        assert list(comparison["kernels"]) == ["good"]
        assert any("'bad'" in w for w in comparison["warnings"])

    def test_non_numeric_sweep_warns_instead_of_raising(self):
        comparison = compare_documents(
            _doc({}, sweep={"serial_s": "torn"}),
            _doc({}, sweep={"serial_s": 1.0}),
        )
        assert "sweep" not in comparison
        assert any("serial_s" in w for w in comparison["warnings"])

    def test_render_lists_warnings(self):
        comparison = compare_documents(
            _doc({"only-here": {"ns_per_op": 1.0}}), _doc({})
        )
        text = render_comparison(comparison)
        assert "warning:" in text
        assert "no regressions beyond threshold" in text

    def test_render_tolerates_documents_without_warnings_key(self):
        comparison = compare_documents(_doc({}), _doc({}))
        comparison.pop("warnings")
        assert "no regressions" in render_comparison(comparison)
