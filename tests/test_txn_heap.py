"""Tests for the persistent heap and per-core arena layout."""

import pytest

from repro.config import CACHE_LINE_SIZE, fast_config
from repro.errors import HeapError
from repro.txn.heap import LOG_ENTRY_BYTES, MemoryLayout, PersistentHeap


class TestHeap:
    def test_allocations_are_disjoint(self):
        heap = PersistentHeap(0, 1 << 20)
        first = heap.alloc(100)
        second = heap.alloc(100)
        assert second >= first + 100

    def test_line_alignment_default(self):
        heap = PersistentHeap(0, 1 << 20)
        heap.alloc(10)
        assert heap.alloc(10) % CACHE_LINE_SIZE == 0

    def test_custom_alignment(self):
        heap = PersistentHeap(0, 1 << 20)
        heap.alloc(3 * CACHE_LINE_SIZE)
        assert heap.alloc(16, align=256) % 256 == 0

    def test_alloc_lines(self):
        heap = PersistentHeap(0, 1 << 20)
        address = heap.alloc_lines(3)
        assert address % CACHE_LINE_SIZE == 0
        assert heap.allocations[address] == 3 * CACHE_LINE_SIZE

    def test_exhaustion_raises(self):
        heap = PersistentHeap(0, 4 * CACHE_LINE_SIZE)
        heap.alloc(3 * CACHE_LINE_SIZE)
        with pytest.raises(HeapError):
            heap.alloc(2 * CACHE_LINE_SIZE)

    def test_accounting(self):
        heap = PersistentHeap(0, 1 << 20)
        heap.alloc(CACHE_LINE_SIZE)
        assert heap.used_bytes == CACHE_LINE_SIZE
        assert heap.free_bytes == (1 << 20) - CACHE_LINE_SIZE

    def test_invalid_parameters(self):
        with pytest.raises(HeapError):
            PersistentHeap(7, 100)
        with pytest.raises(HeapError):
            PersistentHeap(0, 0)
        heap = PersistentHeap(0, 1 << 20)
        with pytest.raises(HeapError):
            heap.alloc(0)
        with pytest.raises(HeapError):
            heap.alloc(8, align=3)


class TestLayout:
    def test_per_core_arenas_disjoint(self):
        layout = MemoryLayout.build(fast_config(num_cores=4))
        spans = [
            (a.heap.base, a.heap.limit) for a in layout.arenas
        ]
        for (b1, l1), (b2, l2) in zip(spans, spans[1:]):
            assert l1 <= b2

    def test_metadata_reserved(self):
        layout = MemoryLayout.build(fast_config(), log_capacity=32)
        arena = layout.arena(0)
        assert arena.txn_record % CACHE_LINE_SIZE == 0
        assert arena.log_base >= arena.txn_record + CACHE_LINE_SIZE
        assert arena.log_capacity == 32
        # User allocations start after the log.
        user = arena.heap.alloc(64)
        assert user >= arena.log_base + 32 * LOG_ENTRY_BYTES

    def test_arena_lookup_bounds(self):
        layout = MemoryLayout.build(fast_config(num_cores=2))
        with pytest.raises(HeapError):
            layout.arena(5)

    def test_arenas_fit_in_data_region(self):
        from repro.nvm.address import AddressMap

        config = fast_config(num_cores=4)
        layout = MemoryLayout.build(config)
        address_map = AddressMap(config.memory_size_bytes)
        for arena in layout.arenas:
            assert arena.heap.limit <= address_map.counter_region_base

    def test_tiny_arena_rejected(self):
        with pytest.raises(HeapError):
            MemoryLayout.build(fast_config(), log_capacity=64, arena_bytes=1024)
