"""Tests for the machine: trace replay, timing, multicore interleaving."""

import pytest

from repro.config import fast_config
from repro.errors import TraceError
from repro.sim.machine import Machine, run_design
from repro.sim.trace import TraceBuilder


def simple_trace(base=0x1000, lines=4, name="t"):
    builder = TraceBuilder(name)
    builder.txn_begin()
    for i in range(lines):
        builder.store_u64(base + i * 64, i + 1)
        builder.clwb(base + i * 64)
    builder.ccwb(base)
    builder.persist_barrier()
    builder.txn_end()
    return builder.build()


class TestSingleCore:
    def test_runtime_positive_and_ops_counted(self):
        result = Machine(fast_config(), "sca").run([simple_trace()])
        assert result.stats.runtime_ns > 0
        assert result.stats.per_core[0].stores == 4
        assert result.stats.per_core[0].clwbs == 4
        assert result.stats.per_core[0].fences == 1
        assert result.stats.transactions == 1

    def test_functional_memory_contents(self):
        machine = Machine(fast_config(), "sca")
        result = machine.run([simple_trace()])
        assert result.hierarchy.read_current(0, 0x1000, 8) == (1).to_bytes(8, "little")

    def test_txn_end_times_recorded(self):
        result = Machine(fast_config(), "sca").run([simple_trace()])
        assert len(result.txn_end_times[0]) == 1
        assert result.txn_end_times[0][0] <= result.stats.runtime_ns

    def test_deterministic(self):
        first = Machine(fast_config(), "sca").run([simple_trace()])
        second = Machine(fast_config(), "sca").run([simple_trace()])
        assert first.stats.runtime_ns == second.stats.runtime_ns

    def test_run_design_helper(self):
        result = run_design(fast_config(), "fca", [simple_trace()])
        assert result.policy.name == "fca"

    def test_compute_advances_clock(self):
        builder = TraceBuilder("t")
        builder.compute(500.0)
        result = Machine(fast_config(), "no-encryption").run([builder.build()])
        assert result.stats.runtime_ns >= 500.0

    def test_load_returns_after_memory_latency(self):
        builder = TraceBuilder("t")
        builder.load(0x1000, 8)
        result = Machine(fast_config(), "no-encryption").run([builder.build()])
        assert result.stats.per_core[0].load_stall_ns > 0


class TestMultiCore:
    def test_two_cores_run_concurrently(self):
        config = fast_config(num_cores=2)
        traces = [simple_trace(0x1000, name="a"), simple_trace(0x8000, name="b")]
        result = Machine(config, "sca").run(traces)
        single = Machine(fast_config(), "sca").run([simple_trace(0x1000)])
        # Two disjoint cores cost far less than 2x a single core.
        assert result.stats.runtime_ns < 1.8 * single.stats.runtime_ns
        assert result.stats.transactions == 2

    def test_more_traces_than_cores_rejected(self):
        with pytest.raises(TraceError):
            Machine(fast_config(num_cores=1), "sca").run(
                [simple_trace(), simple_trace(0x8000)]
            )

    def test_shared_controller_sees_both_cores(self):
        config = fast_config(num_cores=2)
        traces = [simple_trace(0x1000), simple_trace(0x8000)]
        result = Machine(config, "sca").run(traces)
        assert result.controller.stats.data_writes >= 8

    def test_fewer_traces_than_cores_allowed(self):
        config = fast_config(num_cores=4)
        result = Machine(config, "sca").run([simple_trace()])
        assert result.stats.transactions == 1


class TestDesignDifferentiation:
    def test_encrypted_designs_slower_than_plaintext(self):
        trace = simple_trace(lines=16)
        plain = Machine(fast_config(), "no-encryption").run([trace]).stats.runtime_ns
        colocated = Machine(fast_config(), "co-located").run([trace]).stats.runtime_ns
        assert colocated >= plain

    def test_write_traffic_ordering(self):
        """FCA >= SCA >= no-encryption in bytes written."""
        trace = simple_trace(lines=16)
        bytes_by_design = {
            design: Machine(fast_config(), design).run([trace]).stats.bytes_written
            for design in ("no-encryption", "sca", "fca")
        }
        assert bytes_by_design["fca"] >= bytes_by_design["sca"]
        assert bytes_by_design["sca"] >= bytes_by_design["no-encryption"]

    def test_stats_expose_counter_cache_miss_rate(self):
        trace = simple_trace()
        encrypted = Machine(fast_config(), "sca").run([trace])
        plain = Machine(fast_config(), "no-encryption").run([trace])
        assert encrypted.stats.counter_cache_miss_rate is not None
        assert plain.stats.counter_cache_miss_rate is None


class TestStatsDerivations:
    def test_throughput(self):
        result = Machine(fast_config(), "sca").run([simple_trace()])
        stats = result.stats
        expected = stats.transactions / (stats.runtime_ns * 1e-9)
        assert stats.throughput_txn_per_s == pytest.approx(expected)

    def test_normalizations(self):
        trace = simple_trace(lines=8)
        base = Machine(fast_config(), "no-encryption").run([trace]).stats
        sca = Machine(fast_config(), "sca").run([trace]).stats
        assert sca.normalized_runtime(base) == pytest.approx(
            sca.runtime_ns / base.runtime_ns
        )
        assert sca.normalized_write_traffic(base) >= 1.0
        assert sca.normalized_throughput(base) <= 1.001
