"""Tests for crash-image reconstruction (ADR + ready-bit semantics)."""

import pytest

from repro.config import fast_config
from repro.crash.injector import CrashInjector, uniform_sample
from repro.sim.machine import Machine
from repro.sim.trace import TraceBuilder


def run_simple(design="sca", lines=4):
    builder = TraceBuilder("t")
    builder.txn_begin()
    for i in range(lines):
        builder.store_u64(0x1000 + i * 64, i + 1)
        builder.clwb(0x1000 + i * 64)
    builder.ccwb(0x1000)
    builder.persist_barrier()
    builder.txn_end()
    return Machine(fast_config(), design).run([builder.build()])


class TestCrashImages:
    def test_crash_before_anything_is_empty(self):
        injector = CrashInjector(run_simple())
        image = injector.crash_at(0.0)
        assert list(image.device.touched_lines()) == []

    def test_crash_after_everything_has_all_lines(self):
        result = run_simple(lines=4)
        injector = CrashInjector(result)
        image = injector.crash_at(result.stats.runtime_ns + 1e6)
        data_lines = [
            a for a in image.device.touched_lines()
            if image.address_map.is_data_address(a)
        ]
        assert len(data_lines) == 4

    def test_images_monotone_in_time(self):
        result = run_simple(lines=6)
        injector = CrashInjector(result)
        times = injector.interesting_times()
        previous = set()
        for crash_ns in times:
            image = injector.crash_at(crash_ns)
            current = set(image.device.touched_lines())
            assert previous <= current
            previous = current

    def test_adr_off_keeps_fewer_lines(self):
        result = run_simple(lines=6)
        injector = CrashInjector(result)
        # Pick a moment in the middle of the run.
        mid = result.stats.runtime_ns / 2
        with_adr = set(injector.crash_at(mid, adr=True).device.touched_lines())
        without = set(injector.crash_at(mid, adr=False).device.touched_lines())
        assert without <= with_adr

    def test_image_isolated_from_live_device(self):
        result = run_simple()
        injector = CrashInjector(result)
        image = injector.crash_at(result.stats.runtime_ns + 1e6)
        image.device.persist_line(0x9000, bytes(64))
        assert not result.controller.device.contains_line(0x9000)


class TestCrashPointEnumeration:
    def test_interesting_times_sorted(self):
        injector = CrashInjector(run_simple())
        times = injector.interesting_times()
        assert times == sorted(times)
        assert len(times) > 0

    def test_limit_respected_with_endpoints(self):
        injector = CrashInjector(run_simple(lines=8))
        all_times = injector.interesting_times()
        limited = injector.interesting_times(limit=5)
        assert len(limited) == 5
        assert limited[0] == all_times[0]
        assert limited[-1] == all_times[-1]

    def test_midpoints_between_boundaries(self):
        injector = CrashInjector(run_simple())
        midpoints = injector.midpoint_times()
        boundaries = set()
        for record in injector._journal.records:
            boundaries.update(
                t for t in (record.accept_ns, record.ready_ns, record.drain_ns)
                if t != float("inf")
            )
        for m in midpoints:
            assert m not in boundaries

    def test_limit_one_returns_single_point(self):
        # Regression: the sampling step formula divided by zero at
        # limit=1.
        injector = CrashInjector(run_simple(lines=8))
        assert len(injector.interesting_times(limit=1)) == 1
        assert len(injector.midpoint_times(limit=1)) == 1
        assert injector.interesting_times(limit=1)[0] == injector.interesting_times()[0]

    def test_limit_zero_returns_nothing(self):
        injector = CrashInjector(run_simple())
        assert injector.interesting_times(limit=0) == []
        assert injector.midpoint_times(limit=0) == []

    def test_uniform_sample_edge_cases(self):
        ordered = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert uniform_sample(ordered, None) == ordered
        assert uniform_sample(ordered, 10) == ordered
        assert uniform_sample(ordered, 1) == [1.0]
        assert uniform_sample(ordered, 0) == []
        assert uniform_sample(ordered, 2) == [1.0, 5.0]
        assert uniform_sample([], 1) == []
