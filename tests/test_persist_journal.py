"""Tests for the persist journal and its crash-time reconstruction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CACHE_LINE_SIZE
from repro.errors import SimulationError
from repro.persist.journal import JournalKind, PersistJournal

LINE = bytes(range(64))
LINE2 = bytes(64)


class TestDataRecords:
    def test_record_persists_after_drain(self):
        journal = PersistJournal()
        journal.record_data(1, 0x40, LINE, 5, accept_ns=0, ready_ns=0, drain_ns=10)
        data, _ = journal.reconstruct(20.0)
        assert data[0x40] == (LINE, 5)

    def test_record_absent_before_ready(self):
        journal = PersistJournal()
        journal.record_data(1, 0x40, LINE, 5, accept_ns=0, ready_ns=8, drain_ns=10)
        data, _ = journal.reconstruct(5.0)
        assert 0x40 not in data

    def test_adr_drains_ready_but_undrained(self):
        journal = PersistJournal()
        journal.record_data(1, 0x40, LINE, 5, accept_ns=0, ready_ns=2, drain_ns=100)
        with_adr, _ = journal.reconstruct(10.0, adr=True)
        without_adr, _ = journal.reconstruct(10.0, adr=False)
        assert 0x40 in with_adr
        assert 0x40 not in without_adr

    def test_later_record_wins(self):
        journal = PersistJournal()
        journal.record_data(1, 0x40, LINE, 1, accept_ns=0, ready_ns=0, drain_ns=5)
        journal.record_data(2, 0x40, LINE2, 2, accept_ns=10, ready_ns=10, drain_ns=15)
        data, _ = journal.reconstruct(20.0)
        assert data[0x40] == (LINE2, 2)

    def test_crash_between_records_keeps_older(self):
        journal = PersistJournal()
        journal.record_data(1, 0x40, LINE, 1, accept_ns=0, ready_ns=0, drain_ns=5)
        journal.record_data(2, 0x40, LINE2, 2, accept_ns=10, ready_ns=10, drain_ns=15)
        data, _ = journal.reconstruct(7.0)
        assert data[0x40] == (LINE, 1)


class TestAmendments:
    def test_amendment_applies_after_effective_time(self):
        journal = PersistJournal()
        journal.record_data(1, 0x40, LINE, 1, accept_ns=0, ready_ns=0, drain_ns=100)
        journal.amend_data(1, LINE2, 2, effective_ns=50.0)
        data_before, _ = journal.reconstruct(40.0)
        data_after, _ = journal.reconstruct(60.0)
        assert data_before[0x40] == (LINE, 1)
        assert data_after[0x40] == (LINE2, 2)

    def test_latest_applicable_amendment_wins(self):
        journal = PersistJournal()
        journal.record_data(1, 0x40, LINE, 1, accept_ns=0, ready_ns=0, drain_ns=100)
        journal.amend_data(1, LINE2, 2, effective_ns=30.0)
        journal.amend_data(1, LINE, 3, effective_ns=60.0)
        data, _ = journal.reconstruct(45.0)
        assert data[0x40] == (LINE2, 2)
        data, _ = journal.reconstruct(70.0)
        assert data[0x40] == (LINE, 3)

    def test_amending_unknown_record_raises(self):
        journal = PersistJournal()
        with pytest.raises(SimulationError):
            journal.amend_data(99, LINE, 1, effective_ns=0.0)

    def test_amending_wrong_kind_raises(self):
        journal = PersistJournal()
        record = journal.record_counter(
            address=0x1000, counters=tuple(range(8)), group_base=0,
            accept_ns=0, ready_ns=0, drain_ns=1,
        )
        with pytest.raises(SimulationError):
            journal.amend_data(record.entry_id, LINE, 1, effective_ns=0.0)


class TestCounterRecords:
    def test_full_line_record_sets_eight_counters(self):
        journal = PersistJournal()
        journal.record_counter(
            address=0x1000, counters=tuple(range(8)), group_base=0,
            accept_ns=0, ready_ns=0, drain_ns=1,
        )
        _, counters = journal.reconstruct(10.0)
        for slot in range(8):
            assert counters[slot * CACHE_LINE_SIZE] == slot

    def test_single_slot_record(self):
        journal = PersistJournal()
        journal.record_counter(
            address=0x1000, counters=(42,), group_base=0x40,
            accept_ns=0, ready_ns=0, drain_ns=1, single_slot=True,
        )
        _, counters = journal.reconstruct(10.0)
        assert counters == {0x40: 42}

    def test_counter_amendment(self):
        journal = PersistJournal()
        record = journal.record_counter(
            address=0x1000, counters=tuple(range(8)), group_base=0,
            accept_ns=0, ready_ns=0, drain_ns=100,
        )
        journal.amend_counter(record.entry_id, 0, tuple(range(10, 18)), effective_ns=50.0)
        _, before = journal.reconstruct(40.0)
        _, after = journal.reconstruct(60.0)
        assert before[0] == 0
        assert after[0] == 10


class TestPairSemantics:
    def test_pair_persists_or_vanishes_together(self):
        """The property the ready-bit protocol provides: with a shared
        ready time, any crash instant keeps either both or neither."""
        journal = PersistJournal()
        ready = 50.0
        journal.record_data(1, 0x40, LINE, 7, accept_ns=10, ready_ns=ready, drain_ns=200)
        journal.record_counter(
            address=0x1000, counters=(7,) * 8, group_base=0,
            accept_ns=12, ready_ns=ready, drain_ns=220, entry_id=2,
        )
        for crash in (5.0, 11.0, 30.0, 49.9, 50.1, 100.0, 300.0):
            data, counters = journal.reconstruct(crash)
            assert (0x40 in data) == (0 in counters)


class TestFinalImage:
    def test_final_image_is_infinite_time(self):
        journal = PersistJournal()
        journal.record_data(1, 0x40, LINE, 1, accept_ns=0, ready_ns=0, drain_ns=1e12)
        data, _ = journal.final_image()
        assert 0x40 in data

    def test_len_counts_records(self):
        journal = PersistJournal()
        journal.record_data(1, 0x40, LINE, 1, accept_ns=0, ready_ns=0, drain_ns=1)
        journal.record_counter(
            address=0x1000, counters=(1,) * 8, group_base=0,
            accept_ns=0, ready_ns=0, drain_ns=1,
        )
        assert len(journal) == 2


class TestReconstructionProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 7),     # line index
                st.integers(0, 100),   # accept
                st.integers(0, 100),   # ready delta
                st.integers(0, 100),   # drain delta
            ),
            min_size=1,
            max_size=50,
        ),
        st.floats(min_value=0, max_value=500),
    )
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_crash_time_for_fixed_line_count(self, writes, crash):
        """Reconstruction at a later time never loses persisted lines."""
        journal = PersistJournal()
        for i, (line, accept, ready_d, drain_d) in enumerate(writes):
            accept_f = float(accept)
            ready = accept_f + ready_d
            journal.record_data(
                i, line * 64, LINE, i + 1,
                accept_ns=accept_f, ready_ns=ready, drain_ns=ready + drain_d,
            )
        earlier, _ = journal.reconstruct(crash)
        later, _ = journal.reconstruct(crash + 100.0)
        assert set(earlier) <= set(later)
