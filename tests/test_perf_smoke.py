"""Tier-1 perf smoke: kernel fast paths must stay fast.

Runs the smoke-scale kernel benchmarks (fractions of a second each)
and asserts the optimized kernels keep a healthy lead over their
retained reference implementations.  The thresholds are relative
same-process ratios with generous margins (expected speedups are 5x+,
the floor is 2x), so the test does not flake on slow or noisy runners;
a failure means a fast path genuinely regressed.
"""

from __future__ import annotations

import pytest

from repro.bench.perf import bench_kernels
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def kernels():
    return bench_kernels("smoke")


def test_fast_xor_beats_per_byte_reference(kernels):
    assert kernels["xor_line64"]["speedup_vs_reference"] >= 2.0


def test_ttable_aes_beats_textbook_rounds(kernels):
    assert kernels["aes_block"]["speedup_vs_reference"] >= 2.0


def test_otp_aes_kernel_meets_3x_bar(kernels):
    assert kernels["otp_encrypt_aes"]["speedup_vs_reference"] >= 2.0


def test_bmt_incremental_update_beats_full_rebuild(kernels):
    assert kernels["bmt_root_update"]["speedup_vs_reference"] >= 2.0


def test_kernel_timings_present_and_positive(kernels):
    for name, entry in kernels.items():
        assert entry["ns_per_op"] > 0, name


def test_rejects_unknown_scale():
    with pytest.raises(ConfigurationError):
        bench_kernels("warp")
