"""Hardened sweep execution: timeouts, retries, fallback, quarantine."""

import logging
import os
import time

import pytest

from repro.bench.parallel import ResultCache, SweepExecutor, SweepJob, job_cache_key
from repro.config import fast_config
from repro.errors import JobExecutionError
from repro.workloads.base import WorkloadParams

PARAMS = WorkloadParams(operations=8, footprint_bytes=8 * 1024)


# Worker functions must be module-level so the pool can resolve them.


def well_behaved(item):
    return "done:%s" % item


def hang_unless_sentinel(item):
    """Sleep forever on the first call, succeed on the retry.

    The first attempt drops a sentinel file and wedges; the retried
    attempt sees the sentinel and returns — the signature of a
    transiently hung worker.
    """
    if item.startswith("hang:"):
        sentinel = item[len("hang:"):]
        if not os.path.exists(sentinel):
            with open(sentinel, "w", encoding="utf-8") as stream:
                stream.write("first attempt\n")
            time.sleep(60)
    return "done:%s" % item


def hang_always(item):
    time.sleep(60)


def fail_unless_sentinel(item):
    if item.startswith("fail:"):
        sentinel = item[len("fail:"):]
        if not os.path.exists(sentinel):
            with open(sentinel, "w", encoding="utf-8") as stream:
                stream.write("first attempt\n")
            raise ValueError("transient worker failure")
    return "done:%s" % item


def fail_always(item):
    raise ValueError("permanent failure on %s" % item)


class TestTimeoutsAndRetries:
    def test_hung_worker_is_timed_out_and_retried(self, tmp_path):
        executor = SweepExecutor(
            workers=2, job_timeout_s=1.0, max_retries=2, retry_backoff_s=0.01
        )
        items = ["hang:%s" % (tmp_path / "sentinel"), "plain"]
        results = executor.map(hang_unless_sentinel, items)
        assert results == ["done:%s" % items[0], "done:plain"]
        assert executor.timeouts >= 1
        assert executor.retries >= 1
        assert executor.stats()["timeouts"] == executor.timeouts

    def test_permanently_hung_job_raises_after_retries(self):
        executor = SweepExecutor(
            workers=2, job_timeout_s=0.3, max_retries=1, retry_backoff_s=0.01
        )
        with pytest.raises(JobExecutionError):
            executor.map(hang_always, ["a", "b"])
        assert executor.timeouts >= 2

    def test_transient_failure_is_retried(self, tmp_path):
        executor = SweepExecutor(workers=2, max_retries=2, retry_backoff_s=0.01)
        items = ["fail:%s" % (tmp_path / "sentinel"), "plain"]
        results = executor.map(fail_unless_sentinel, items)
        assert results == ["done:%s" % items[0], "done:plain"]
        assert executor.retries >= 1

    def test_persistent_failure_falls_back_in_process_then_raises(self):
        executor = SweepExecutor(workers=2, max_retries=1, retry_backoff_s=0.01)
        with pytest.raises(ValueError, match="permanent failure"):
            executor.map(fail_always, ["a", "b"])
        # The final attempt ran in-process, not in a broken pool.
        assert executor.pool_fallbacks >= 1

    def test_on_result_fires_for_pooled_results(self, tmp_path):
        executor = SweepExecutor(workers=2, retry_backoff_s=0.01)
        landed = {}
        results = executor.map(
            well_behaved,
            ["a", "b", "c"],
            on_result=lambda index, value: landed.__setitem__(index, value),
        )
        assert results == ["done:a", "done:b", "done:c"]
        assert landed == {0: "done:a", 1: "done:b", 2: "done:c"}


class TestCacheQuarantine:
    def test_corrupt_entry_is_quarantined_counted_and_logged(self, tmp_path, caplog):
        cache = ResultCache(str(tmp_path))
        job = SweepJob("sca", "array", config=fast_config(), params=PARAMS)
        key = job_cache_key(job)
        (tmp_path / (key + ".json")).write_text("{not json", encoding="utf-8")
        with caplog.at_level(logging.WARNING, logger="repro.bench.parallel"):
            assert cache.get(key) is None
        assert cache.corruption_events == 1
        assert (tmp_path / (key + ".json.corrupt")).exists()
        assert not (tmp_path / (key + ".json")).exists()
        assert any("corrupt result-cache entry" in r.message for r in caplog.records)

    def test_executor_surfaces_corruption_in_stats(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = SweepJob("sca", "array", config=fast_config(), params=PARAMS)
        key = job_cache_key(job)
        (tmp_path / (key + ".json")).write_text('{"stats": 42}', encoding="utf-8")
        executor = SweepExecutor(workers=1, cache=cache)
        executor.map_stats([job])
        assert executor.cache_corruption_events == 1
        assert executor.stats()["cache_corruption_events"] == 1
        # The recomputed result replaced the quarantined entry.
        assert cache.get(key) is not None

    def test_clear_sweeps_quarantined_files_too(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        (tmp_path / "dead.json.corrupt").write_text("x", encoding="utf-8")
        (tmp_path / "live.json").write_text("x", encoding="utf-8")
        assert cache.clear() == 2
        assert list(tmp_path.iterdir()) == []
