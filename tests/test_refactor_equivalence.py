"""Golden-fingerprint equivalence: the composed controller vs the seed.

``tests/fixtures/golden_equivalence.json`` was captured from the
pre-refactor monolithic ``MemoryController`` (see
``tests/equivalence_harness.py``).  Every registered design — including
all four ``+bmt`` corners — must still produce bit-identical
``result_fingerprint``s, ControllerStats, and checkpoint-resume
fingerprints after the layout/atomicity/integrity decomposition.

A failure here means the refactor changed something observable about
the simulation; fix the refactor, do not re-capture the fixture.
"""

from __future__ import annotations

import pytest

from tests.equivalence_harness import (
    ALL_DESIGN_NAMES,
    SCENARIOS,
    load_fixture,
    run_scenario,
    scenario_key,
)

_FIXTURE = load_fixture()

_CELLS = [
    (design, workload, mechanism, operations, seed)
    for design in ALL_DESIGN_NAMES
    for workload, mechanism, operations, seed in SCENARIOS
]


def test_fixture_covers_every_registered_design():
    from repro.core.designs import list_designs

    registered = set(list_designs(include_unsafe=True, include_integrity=True))
    assert registered == set(ALL_DESIGN_NAMES)
    expected_keys = {scenario_key(*cell) for cell in _CELLS}
    assert set(_FIXTURE["cells"]) == expected_keys


@pytest.mark.parametrize(
    "design,workload,mechanism,operations,seed",
    _CELLS,
    ids=[scenario_key(*cell) for cell in _CELLS],
)
def test_bit_identical_to_pre_refactor(design, workload, mechanism, operations, seed):
    golden = _FIXTURE["cells"][scenario_key(design, workload, mechanism, operations, seed)]
    actual = run_scenario(design, workload, mechanism, operations, seed)
    assert actual["fingerprint"] == golden["fingerprint"]
    assert actual["resume_fingerprint"] == golden["resume_fingerprint"]
    assert actual["events"] == golden["events"]
    assert actual["stats"] == golden["stats"]
