"""End-to-end integration: workloads x designs, functional correctness."""

import pytest

from repro.bench.harness import run_workload
from repro.config import CACHE_LINE_SIZE, KB, fast_config
from repro.core.designs import list_designs
from repro.workloads.base import WorkloadParams

PARAMS = WorkloadParams(operations=10, footprint_bytes=8 * KB)
ALL_DESIGNS = list_designs(include_unsafe=True)
ALL_WORKLOADS = ["array", "queue", "hash", "btree", "rbtree"]


class TestEveryCombinationRuns:
    @pytest.mark.parametrize("design", ALL_DESIGNS)
    @pytest.mark.parametrize("workload", ALL_WORKLOADS)
    def test_runs_to_completion(self, design, workload):
        outcome = run_workload(design, workload, params=PARAMS)
        assert outcome.stats.runtime_ns > 0
        assert outcome.stats.transactions == len(outcome.runs[0].history)


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("design", ["sca", "fca", "co-located-cc", "no-encryption"])
    def test_memory_matches_workload_model(self, design):
        """After a crash-free run, the hierarchy's view of every touched
        line equals the workload's plaintext model — the whole stack
        (caches, encryption, queues, NVM) moves bytes correctly."""
        outcome = run_workload(design, "array", params=PARAMS)
        hierarchy = outcome.result.hierarchy
        model = outcome.runs[0].final_model
        for line in model.touched_lines():
            actual = hierarchy.read_current(0, line, CACHE_LINE_SIZE)
            assert actual == model.line(line), "mismatch at 0x%x" % line

    def test_multicore_functional_correctness(self):
        config = fast_config(num_cores=2)
        outcome = run_workload("sca", "queue", config=config, params=PARAMS)
        for core, run in enumerate(outcome.runs):
            model = run.final_model
            for line in model.touched_lines():
                actual = outcome.result.hierarchy.read_current(
                    core, line, CACHE_LINE_SIZE
                )
                assert actual == model.line(line)


class TestDesignOrderings:
    """The coarse performance relationships the paper establishes."""

    def _runtime(self, design, workload="array"):
        params = WorkloadParams(operations=25, footprint_bytes=16 * KB)
        return run_workload(design, workload, params=params).stats.runtime_ns

    def test_no_encryption_is_fastest(self):
        baseline = self._runtime("no-encryption")
        for design in ("sca", "fca", "co-located", "co-located-cc"):
            assert self._runtime(design) >= baseline

    def test_sca_not_slower_than_fca(self):
        assert self._runtime("sca") <= self._runtime("fca") * 1.001

    def test_counter_cache_helps_colocated(self):
        assert self._runtime("co-located-cc") <= self._runtime("co-located")

    def test_write_traffic_ordering(self):
        params = WorkloadParams(operations=25, footprint_bytes=16 * KB)
        traffic = {
            design: run_workload(design, "array", params=params).stats.bytes_written
            for design in ("no-encryption", "sca", "fca")
        }
        assert traffic["no-encryption"] <= traffic["sca"] <= traffic["fca"]


class TestTrafficAccounting:
    def test_journal_agrees_with_device(self):
        """The journal's final image equals the live device state."""
        outcome = run_workload("sca", "array", params=PARAMS)
        controller = outcome.result.controller
        data_lines, counters = controller.journal.final_image()
        for address, (payload, encrypted_with) in data_lines.items():
            stored = controller.device.read_line(address)
            assert stored.payload == payload
            assert stored.encrypted_with == encrypted_with
        for address, counter in counters.items():
            assert controller.counter_store.read(address) == counter

    def test_wear_tracking_matches_write_count(self):
        outcome = run_workload("no-encryption", "array", params=PARAMS)
        device = outcome.result.controller.device
        assert device.wear.total_writes == device.line_writes
