"""Tests for the write queues: occupancy, coalescing, ready bits, ADR."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueueFullError, SimulationError
from repro.mem.writequeue import WriteQueue


def make_entry(queue, address=0x40, t=0.0, ca=False):
    entry = queue.accept(address, t, None, is_counter=False, counter_atomic=ca)
    return entry


class TestAcceptance:
    def test_empty_queue_accepts_immediately(self):
        queue = WriteQueue("q", 4)
        assert queue.acceptance_time(5.0) == 5.0

    def test_full_queue_waits_for_earliest_release(self):
        queue = WriteQueue("q", 2)
        for i in range(2):
            entry = make_entry(queue, address=i * 64, t=0.0)
            queue.mark_ready(entry, 0.0)
            queue.set_drain_time(entry, 100.0 + i, slot_release_ns=50.0 + i)
        assert queue.acceptance_time(10.0) == 50.0

    def test_slots_free_after_release_time(self):
        queue = WriteQueue("q", 1)
        entry = make_entry(queue, t=0.0)
        queue.mark_ready(entry, 0.0)
        queue.set_drain_time(entry, 100.0, slot_release_ns=30.0)
        assert queue.acceptance_time(40.0) == 40.0

    def test_occupancy_counts_unreleased(self):
        queue = WriteQueue("q", 4)
        for i in range(3):
            entry = make_entry(queue, address=i * 64)
            queue.mark_ready(entry, 0.0)
            queue.set_drain_time(entry, 100.0, slot_release_ns=50.0)
        assert queue.occupancy(10.0) == 3
        assert queue.occupancy(60.0) == 0

    def test_accept_wait_accounted(self):
        queue = WriteQueue("q", 1)
        entry = make_entry(queue, t=0.0)
        queue.mark_ready(entry, 0.0)
        queue.set_drain_time(entry, 100.0, slot_release_ns=100.0)
        late = queue.accept(0x80, 10.0, None, is_counter=False)
        assert late.accept_ns == 100.0
        assert queue.total_accept_wait_ns == pytest.approx(90.0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(QueueFullError):
            WriteQueue("q", 0)


class TestReadyBits:
    def test_ready_before_accept_rejected(self):
        queue = WriteQueue("q", 4)
        entry = make_entry(queue, t=10.0)
        with pytest.raises(SimulationError):
            queue.mark_ready(entry, 5.0)

    def test_drain_before_ready_rejected(self):
        queue = WriteQueue("q", 4)
        entry = make_entry(queue, t=0.0)
        queue.mark_ready(entry, 10.0)
        with pytest.raises(SimulationError):
            queue.set_drain_time(entry, 5.0)

    def test_slot_release_after_drain_rejected(self):
        queue = WriteQueue("q", 4)
        entry = make_entry(queue, t=0.0)
        queue.mark_ready(entry, 0.0)
        with pytest.raises(SimulationError):
            queue.set_drain_time(entry, 10.0, slot_release_ns=20.0)


class TestCoalescing:
    def _queued_entry(self, queue, address=0x40, release=1000.0):
        entry = make_entry(queue, address=address, t=0.0)
        queue.mark_ready(entry, 0.0)
        queue.set_drain_time(entry, release, slot_release_ns=release)
        return entry

    def test_live_entry_merges(self):
        queue = WriteQueue("q", 4)
        entry = self._queued_entry(queue)
        merged = queue.try_coalesce(0x40, 10.0, b"x" * 64, 7)
        assert merged is entry
        assert merged.encrypted_with == 7
        assert queue.coalesced == 1

    def test_issued_entry_does_not_merge(self):
        queue = WriteQueue("q", 4)
        self._queued_entry(queue, release=5.0)
        assert queue.try_coalesce(0x40, 10.0, None, 0) is None

    def test_counter_atomic_entry_protected_by_default(self):
        queue = WriteQueue("q", 4)
        entry = make_entry(queue, ca=True)
        queue.mark_ready(entry, 0.0)
        queue.set_drain_time(entry, 1000.0, slot_release_ns=1000.0)
        assert queue.try_coalesce(0x40, 1.0, None, 0) is None
        assert queue.try_coalesce(0x40, 1.0, None, 0, allow_counter_atomic=True) is entry

    def test_disabled_coalescing(self):
        queue = WriteQueue("q", 4, coalesce=False)
        self._queued_entry(queue)
        assert queue.try_coalesce(0x40, 1.0, None, 0) is None

    def test_peek_does_not_mutate(self):
        queue = WriteQueue("q", 4)
        entry = self._queued_entry(queue)
        peeked = queue.peek_coalesce(0x40, 1.0)
        assert peeked is entry
        assert entry.coalesced == 0
        assert queue.coalesced == 0


class TestCrashSemantics:
    def test_adr_drains_only_ready_entries(self):
        """Paper §5.2.2 'Steps During a System Failure': only ready
        entries drain when the power fails."""
        queue = WriteQueue("q", 8)
        ready = make_entry(queue, address=0x00, t=0.0)
        queue.mark_ready(ready, 5.0)
        queue.set_drain_time(ready, 100.0, slot_release_ns=100.0)
        unready = make_entry(queue, address=0x40, t=0.0)
        queue.mark_ready(unready, 50.0)  # pair completes late
        queue.set_drain_time(unready, 120.0, slot_release_ns=120.0)

        crash_ns = 20.0
        drainable = queue.adr_drainable_at(crash_ns)
        dropped = queue.dropped_at(crash_ns)
        assert [e.address for e in drainable] == [0x00]
        assert [e.address for e in dropped] == [0x40]

    def test_entries_at_excludes_drained(self):
        queue = WriteQueue("q", 8)
        entry = make_entry(queue, t=0.0)
        queue.mark_ready(entry, 0.0)
        queue.set_drain_time(entry, 10.0, slot_release_ns=10.0)
        assert queue.entries_at(5.0) == [entry]
        assert queue.entries_at(15.0) == []

    def test_entries_at_excludes_not_yet_accepted(self):
        queue = WriteQueue("q", 8)
        entry = make_entry(queue, t=100.0)
        queue.mark_ready(entry, 100.0)
        queue.set_drain_time(entry, 200.0, slot_release_ns=200.0)
        assert queue.entries_at(50.0) == []


class TestProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e4), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_acceptance_never_earlier_than_request(self, times):
        queue = WriteQueue("q", 4)
        for i, t in enumerate(sorted(times)):
            entry = queue.accept(i * 64, t, None, is_counter=False)
            assert entry.accept_ns >= t
            queue.mark_ready(entry, entry.accept_ns)
            queue.set_drain_time(
                entry, entry.accept_ns + 50.0, slot_release_ns=entry.accept_ns + 25.0
            )

    @given(st.lists(st.floats(min_value=0, max_value=1e4), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_peak_occupancy_bounded_by_capacity(self, times):
        queue = WriteQueue("q", 3)
        for i, t in enumerate(sorted(times)):
            entry = queue.accept(i * 64, t, None, is_counter=False)
            queue.mark_ready(entry, entry.accept_ns)
            queue.set_drain_time(
                entry, entry.accept_ns + 40.0, slot_release_ns=entry.accept_ns + 40.0
            )
        assert queue.peak_occupancy <= 3 + 1
