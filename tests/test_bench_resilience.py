"""Self-healing execution: heartbeats, the executor's stall watchdog,
resilient workload runs, and campaign checkpoint plumbing."""

import dataclasses
import json
import os
import time

import pytest

from repro.bench.cli import main
from repro.bench.harness import build_traces
from repro.bench.parallel import SweepExecutor, code_version
from repro.bench.resilience import Heartbeat, run_workload_resilient
from repro.config import fast_config
from repro.crash.campaign import (
    CampaignReport,
    CampaignRunner,
    CampaignSpec,
    Outcome,
    job_key,
    run_campaign_job,
)
from repro.sim.machine import Machine
from repro.sim.snapshot import SnapshotStore, result_fingerprint
from repro.workloads.base import WorkloadParams


def small_spec(**overrides):
    base = dict(
        workloads=("array",),
        designs=("sca",),
        mechanisms=("undo",),
        faults=("torn-counter",),
        crash_points=4,
        operations=6,
        seed=7,
    )
    base.update(overrides)
    return CampaignSpec(**base)


# Module-level so the fork pool can pickle it.  First attempt beats its
# heartbeat once, drops a sentinel, and hangs; the retry after the
# watchdog fires sees the sentinel and completes.
def _beat_then_hang(item):
    heartbeat_path, sentinel_path = item
    with open(heartbeat_path, "w", encoding="utf-8") as handle:
        handle.write("{}")
    if os.path.exists(sentinel_path):
        return "healed"
    with open(sentinel_path, "w", encoding="utf-8") as handle:
        handle.write("x")
    time.sleep(60)
    return "never"  # pragma: no cover - the watchdog kills us first


class TestHeartbeat:
    def test_beat_publishes_json_beacon(self, tmp_path):
        path = str(tmp_path / "hb.json")
        heartbeat = Heartbeat(path)
        assert heartbeat.beat(progress=3) is True
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["pid"] == os.getpid()
        assert payload["progress"] == 3
        assert heartbeat.beats_written == 1

    def test_beats_are_rate_limited(self, tmp_path):
        heartbeat = Heartbeat(str(tmp_path / "hb.json"), min_interval_s=60.0)
        assert heartbeat.beat() is True
        assert heartbeat.beat() is False  # within the interval
        assert heartbeat.beat(force=True) is True
        assert heartbeat.beats_written == 2

    def test_zero_interval_beats_every_time(self, tmp_path):
        heartbeat = Heartbeat(str(tmp_path / "hb.json"), min_interval_s=0.0)
        assert all(heartbeat.beat() for _ in range(5))
        assert heartbeat.beats_written == 5

    def test_clear_is_idempotent(self, tmp_path):
        heartbeat = Heartbeat(str(tmp_path / "hb.json"))
        heartbeat.beat()
        heartbeat.clear()
        assert not os.path.exists(heartbeat.path)
        heartbeat.clear()  # no file, no error


class TestResilientWorkloadRun:
    def test_uncheckpointed_run_reports_zero_stats(self):
        outcome, stats = run_workload_resilient(
            "sca", "array", params=WorkloadParams(operations=4, seed=3)
        )
        assert outcome.result.stats.transactions > 0
        assert stats == {"restored": 0, "restored_events": 0}

    def test_resume_matches_uninterrupted_run(self, tmp_path):
        params = WorkloadParams(operations=6, seed=5)
        baseline, _stats = run_workload_resilient(
            "sca", "hash", mechanism="undo", params=params
        )
        expected = result_fingerprint(baseline.result)
        # Forge the state a killed worker leaves behind: a mid-run
        # snapshot written with the current code hash.
        config = fast_config()
        traces, _runs, _layout = build_traces("hash", config, "undo", params)
        machine = Machine(config, "sca")
        machine.begin(traces)
        for _ in range(20):
            machine.step()
        checkpoint_dir = str(tmp_path / "ckpt")
        SnapshotStore(checkpoint_dir, code=code_version()).save(machine.get_state())
        outcome, stats = run_workload_resilient(
            "sca",
            "hash",
            mechanism="undo",
            params=params,
            checkpoint_dir=checkpoint_dir,
            every_events=50,
        )
        assert stats["restored"] == 1
        assert stats["restored_events"] == 20
        assert result_fingerprint(outcome.result) == expected

    def test_heartbeat_beats_while_running(self, tmp_path):
        heartbeat = Heartbeat(str(tmp_path / "hb.json"), min_interval_s=0.0)
        run_workload_resilient(
            "sca",
            "array",
            params=WorkloadParams(operations=4, seed=3),
            heartbeat=heartbeat,
        )
        assert heartbeat.beats_written > 0
        assert os.path.exists(heartbeat.path)


class TestStallWatchdog:
    def test_stalled_workers_are_recycled_and_retried(self, tmp_path):
        items, heartbeats = [], []
        for n in range(2):
            heartbeats.append(str(tmp_path / ("hb%d.json" % n)))
            items.append((heartbeats[-1], str(tmp_path / ("sentinel%d" % n))))
        executor = SweepExecutor(
            workers=2,
            cache=None,
            job_timeout_s=30.0,
            max_retries=2,
            heartbeat_timeout_s=0.3,
        )
        started = time.monotonic()
        values = executor.map(_beat_then_hang, items, heartbeats=heartbeats)
        assert values == ["healed", "healed"]
        assert executor.stalls == 2
        assert executor.stats()["stalls"] == 2
        # The watchdog fired long before the 30 s job timeout.
        assert time.monotonic() - started < 20.0

    def test_heartbeats_must_align_with_items(self):
        executor = SweepExecutor(workers=1, cache=None)
        with pytest.raises(ValueError):
            executor.map(len, ["ab", "cd"], heartbeats=["only-one.json"])


class TestCampaignCheckpointing:
    def test_runner_checkpoints_then_cleans_up(self, tmp_path):
        checkpoint_dir = tmp_path / "checkpoints"
        report = CampaignRunner(
            small_spec(),
            journal_dir=str(tmp_path / "journal"),
            checkpoint_dir=str(checkpoint_dir),
            checkpoint_every=40,
        ).run()
        assert report.resilience["saved"] > 0
        assert report.resilience["restored"] == 0
        assert "checkpointing:" in report.render()
        assert "resilience" in report.as_dict()
        # Journaled jobs drop their snapshot scaffolding; the journal is
        # the durable record.
        assert not checkpoint_dir.exists() or os.listdir(str(checkpoint_dir)) == []

    def test_job_resumes_from_partial_snapshot(self, tmp_path):
        job = small_spec().jobs()[0]
        baseline = run_campaign_job(job)
        params = WorkloadParams(
            operations=job.operations,
            seed=job.seed,
            footprint_bytes=job.footprint_bytes,
        )
        config = fast_config()
        traces, _runs, _layout = build_traces(
            job.workload, config, job.mechanism, params
        )
        machine = Machine(config, job.design)
        machine.begin(traces)
        for _ in range(15):
            machine.step()
        job_dir = str(tmp_path / "job")
        SnapshotStore(job_dir, code=code_version()).save(machine.get_state())
        resumed = run_campaign_job(
            dataclasses.replace(job, checkpoint_dir=job_dir, checkpoint_every=500)
        )
        assert resumed["resilience"]["restored"] == 1
        assert resumed["outcomes"] == baseline["outcomes"]
        # Checkpoint plumbing is execution-only: same job identity.
        assert resumed["key"] == baseline["key"]

    def test_counter_recovery_flag_changes_key_and_only_upgrades(self):
        job = small_spec().jobs()[0]
        flagged = dataclasses.replace(job, with_counter_recovery=True)
        assert job_key(flagged) != job_key(job)
        assert flagged.document()["with_counter_recovery"] is True
        base = run_campaign_job(job)
        searched = run_campaign_job(flagged)
        outcomes = searched["outcomes"]
        assert Outcome.RECOVERED_SEARCH.value in outcomes
        # The search stage can only convert detected points into
        # recovered-by-search; every other bucket is untouched.
        assert (
            outcomes[Outcome.RECOVERED_SEARCH.value]
            + outcomes[Outcome.DETECTED.value]
            == base["outcomes"][Outcome.DETECTED.value]
        )
        for same in (Outcome.RECOVERED, Outcome.SILENT, Outcome.CRASHED):
            assert outcomes[same.value] == base["outcomes"][same.value]


def _silent_report():
    return CampaignReport(
        spec={},
        results=[
            {
                "key": "k",
                "job": {
                    "workload": "array",
                    "design": "sca",
                    "mechanism": "undo",
                    "fault": "torn-data",
                },
                "points": 2,
                "fault_events": 2,
                "outcomes": {
                    Outcome.RECOVERED.value: 1,
                    Outcome.SILENT.value: 1,
                },
                "examples": [],
            }
        ],
    )


class TestCliResilience:
    CAMPAIGN_ARGS = [
        "campaign",
        "--workloads", "array",
        "--designs", "sca",
        "--mechanisms", "undo",
        "--faults", "none",
        "--crash-points", "2",
        "--operations", "4",
    ]

    def test_resume_from_missing_dir_exits_2(self, tmp_path, capsys):
        argv = self.CAMPAIGN_ARGS + ["--resume-from", str(tmp_path / "nope")]
        assert main(argv) == 2
        assert "no such directory" in capsys.readouterr().err

    def test_resume_from_conflicting_campaign_dir_exits_2(self, tmp_path, capsys):
        (tmp_path / "a").mkdir()
        argv = self.CAMPAIGN_ARGS + [
            "--resume-from", str(tmp_path / "a"),
            "--campaign-dir", str(tmp_path / "b"),
        ]
        assert main(argv) == 2
        assert "disagree" in capsys.readouterr().err

    def test_resume_from_picks_up_existing_journal(self, tmp_path, capsys):
        campaign_dir = str(tmp_path / "campaign")
        assert main(self.CAMPAIGN_ARGS + ["--campaign-dir", campaign_dir]) == 0
        capsys.readouterr()
        assert main(self.CAMPAIGN_ARGS + ["--resume-from", campaign_dir]) == 0
        assert "resumed: 1 job(s)" in capsys.readouterr().out

    def test_checkpointing_reported_and_scaffolding_consumed(self, tmp_path, capsys):
        campaign_dir = tmp_path / "campaign"
        argv = self.CAMPAIGN_ARGS + [
            "--campaign-dir", str(campaign_dir),
            "--checkpoint-every", "40",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "checkpointing:" in out
        assert "snapshot(s) saved" in out
        checkpoints = campaign_dir / "checkpoints"
        assert not checkpoints.exists() or os.listdir(str(checkpoints)) == []

    def test_strict_turns_silent_corruption_into_failure(self, monkeypatch, capsys):
        import repro.crash.campaign as campaign_mod

        monkeypatch.setattr(
            campaign_mod.CampaignRunner, "run", lambda self: _silent_report()
        )
        assert main(self.CAMPAIGN_ARGS) == 0
        capsys.readouterr()
        assert main(self.CAMPAIGN_ARGS + ["--strict"]) == 1
        captured = capsys.readouterr()
        assert "silent corruption" in captured.err
        assert "--strict" in captured.err
