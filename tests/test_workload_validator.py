"""Tests for the prefix validator and access-distribution helpers."""

import random

import pytest

from repro.bench.harness import run_workload
from repro.config import CACHE_LINE_SIZE, KB
from repro.crash.injector import CrashInjector
from repro.crash.recovery import RecoveryManager
from repro.errors import WorkloadError
from repro.workloads.base import (
    PrefixValidator,
    RecordedTxn,
    WorkloadParams,
    WorkloadRun,
    zipf_index,
)

PARAMS = WorkloadParams(operations=6, footprint_bytes=8 * KB)


def final_recovered(outcome):
    injector = CrashInjector(outcome.result)
    return RecoveryManager(outcome.result.config.encryption).recover(
        injector.crash_at(outcome.stats.runtime_ns + 1e9)
    )


class TestPrefixValidator:
    def test_final_state_is_the_full_prefix(self):
        outcome = run_workload("sca", "array", params=PARAMS)
        assert outcome.validator(0)(final_recovered(outcome)) == []

    def test_detects_corrupted_line(self):
        outcome = run_workload("sca", "array", params=PARAMS)
        recovered = final_recovered(outcome)
        victim = outcome.runs[0].history[-1].writes[0][0]
        recovered.plaintext_lines[victim] = b"\xde\xad" * 32
        problems = outcome.validator(0)(recovered)
        assert problems
        assert "prefix" in problems[0]

    def test_commit_durability_enforced(self):
        """A crash time after txn k's commit must not accept prefixes
        shorter than k+1."""
        outcome = run_workload("sca", "array", params=PARAMS)
        run = outcome.runs[0]
        end_times = outcome.result.txn_end_times[0]
        validator = PrefixValidator(run, txn_end_times=end_times)
        recovered = final_recovered(outcome)
        # Roll the memory back to the initial (empty) state but claim
        # the crash happened after the last commit: must be rejected.
        recovered.plaintext_lines = {
            line: bytes(CACHE_LINE_SIZE) for line in recovered.plaintext_lines
        }
        recovered.image.crash_ns = end_times[-1] + 1.0
        # Clear the txn record so recovery is a no-op.
        problems = validator(recovered)
        assert problems

    def test_unknown_mechanism_raises(self):
        """An unknown mechanism is a caller bug, not a crash outcome."""
        outcome = run_workload("sca", "array", params=PARAMS)
        run = outcome.runs[0]
        broken = WorkloadRun(
            name=run.name,
            arena=run.arena,
            initial_image=run.initial_image,
            history=run.history,
            final_model=run.final_model,
            mechanism="journaling",
            operations=run.operations,
        )
        validator = PrefixValidator(broken)
        with pytest.raises(WorkloadError):
            validator(final_recovered(outcome))

    def test_tracked_lines_cover_history(self):
        outcome = run_workload("sca", "queue", params=PARAMS)
        run = outcome.runs[0]
        tracked = run.tracked_lines()
        for txn in run.history:
            for line, _old, _new in txn.writes:
                assert line in tracked


class TestZipfIndex:
    def test_uniform_when_alpha_zero(self):
        rng = random.Random(1)
        counts = [0] * 10
        for _ in range(10000):
            counts[zipf_index(rng, 10, 0.0)] += 1
        assert min(counts) > 700  # roughly uniform

    def test_skew_concentrates_low_indices(self):
        rng = random.Random(1)
        hits_low = sum(1 for _ in range(5000) if zipf_index(rng, 1000, 1.5) < 100)
        assert hits_low > 2500  # far above the uniform 10%

    def test_bounds_respected(self):
        rng = random.Random(2)
        for alpha in (0.0, 0.5, 2.0):
            for _ in range(500):
                index = zipf_index(rng, 7, alpha)
                assert 0 <= index < 7

    def test_single_element_population(self):
        rng = random.Random(3)
        assert zipf_index(rng, 1, 2.0) == 0

    def test_negative_alpha_rejected_by_params(self):
        with pytest.raises(WorkloadError):
            WorkloadParams(operations=1, zipf_alpha=-0.5)

    def test_skewed_workload_has_better_counter_locality(self):
        """The fig15 rationale: skew raises counter-cache hit rates."""
        uniform = run_workload(
            "array",
            "array",
            params=WorkloadParams(operations=60, footprint_bytes=64 * KB),
        ) if False else run_workload(
            "sca",
            "array",
            params=WorkloadParams(operations=60, footprint_bytes=64 * KB),
        )
        skewed = run_workload(
            "sca",
            "array",
            params=WorkloadParams(
                operations=60, footprint_bytes=64 * KB, zipf_alpha=2.0
            ),
        )
        assert (
            skewed.stats.counter_cache_miss_rate
            <= uniform.stats.counter_cache_miss_rate
        )
