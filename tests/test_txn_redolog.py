"""Tests for redo-logging transactions."""

import pytest

from repro.config import fast_config
from repro.crash.injector import CrashInjector
from repro.crash.recovery import RecoveryManager
from repro.errors import TransactionError
from repro.sim.machine import Machine
from repro.sim.trace import OpKind, TraceBuilder
from repro.txn.heap import MemoryLayout
from repro.txn.redolog import RedoLogTransactions, recover_redo_log

NEW = bytes([0xCD]) * 64


@pytest.fixture
def setup():
    config = fast_config()
    layout = MemoryLayout.build(config, log_capacity=16)
    builder = TraceBuilder("redo-test")
    txns = RedoLogTransactions(builder, layout.arena(0))
    return config, layout, builder, txns


class TestProtocolShape:
    def test_stage_order(self, setup):
        _config, layout, builder, txns = setup
        target = layout.arena(0).heap.alloc_lines(1)
        txns.run([(target, NEW)])
        labels = [op.note for op in builder.build() if op.kind is OpKind.LABEL]
        assert labels == ["prepare", "commit", "write-back", "retire"]

    def test_two_counter_atomic_stores(self, setup):
        _config, layout, builder, txns = setup
        target = layout.arena(0).heap.alloc_lines(1)
        txns.run([(target, NEW)])
        ca_stores = [
            op for op in builder.build()
            if op.kind is OpKind.STORE and op.counter_atomic
        ]
        assert len(ca_stores) == 2  # commit (valid=1), retire (valid=0)

    def test_in_place_write_after_commit(self, setup):
        """Redo logging's defining order: data is written in place only
        after the commit record flips."""
        _config, layout, builder, txns = setup
        target = layout.arena(0).heap.alloc_lines(1)
        txns.run([(target, NEW)])
        ops = builder.build().ops
        commit = next(
            i for i, op in enumerate(ops)
            if op.kind is OpKind.STORE and op.counter_atomic
        )
        in_place = next(
            i for i, op in enumerate(ops)
            if op.kind is OpKind.STORE and op.address == target
        )
        assert in_place > commit

    def test_nesting_rejected(self, setup):
        _config, _layout, _builder, txns = setup
        txns.begin()
        with pytest.raises(TransactionError):
            txns.begin()

    def test_wrong_size_rejected(self, setup):
        _config, _layout, _builder, txns = setup
        txns.begin()
        with pytest.raises(TransactionError):
            txns.write_line(0x1000, b"small")


class TestRecovery:
    def test_completed_run_recovers_new_value(self, setup):
        config, layout, builder, txns = setup
        target = layout.arena(0).heap.alloc_lines(1)
        txns.run([(target, NEW)])
        result = Machine(config, "sca").run([builder.build()])
        injector = CrashInjector(result)
        recovered = RecoveryManager(config.encryption).recover(
            injector.crash_at(result.stats.runtime_ns + 1e6)
        )
        recover_redo_log(recovered, layout.arena(0))
        assert recovered.read(target, 64) == NEW

    def test_crash_before_commit_keeps_old_value(self, setup):
        config, layout, builder, txns = setup
        target = layout.arena(0).heap.alloc_lines(1)
        txns.run([(target, NEW)])
        result = Machine(config, "sca").run([builder.build()])
        injector = CrashInjector(result)
        recovered = RecoveryManager(config.encryption).recover(injector.crash_at(0.5))
        applied = recover_redo_log(recovered, layout.arena(0))
        assert applied == []
        assert recovered.read(target, 64) == bytes(64)

    def test_crash_sweep_always_old_or_new(self, setup):
        """At every crash instant, redo recovery lands on exactly the
        old or the new value — never a torn mixture."""
        config, layout, builder, txns = setup
        target = layout.arena(0).heap.alloc_lines(1)
        txns.run([(target, NEW)])
        result = Machine(config, "sca").run([builder.build()])
        injector = CrashInjector(result)
        manager = RecoveryManager(config.encryption)
        for crash_ns in injector.interesting_times(limit=40):
            recovered = manager.recover(injector.crash_at(crash_ns))
            recover_redo_log(recovered, layout.arena(0))
            value = recovered.read(target, 64)
            assert value in (bytes(64), NEW), "torn state at %.1f" % crash_ns
