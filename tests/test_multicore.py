"""Multicore-specific behaviour: sharing, contention, fairness."""

import pytest

from repro.config import KB, bench_config, fast_config
from repro.bench.harness import run_workload
from repro.sim.machine import Machine
from repro.sim.trace import TraceBuilder
from repro.workloads.base import WorkloadParams

PARAMS = WorkloadParams(operations=10, footprint_bytes=8 * KB)


def write_trace(base, lines=8, name="t"):
    builder = TraceBuilder(name)
    builder.txn_begin()
    for i in range(lines):
        builder.store_u64(base + i * 64, i + 1)
        builder.clwb(base + i * 64)
    builder.ccwb(base)
    builder.persist_barrier()
    builder.txn_end()
    return builder.build()


class TestSharedData:
    def test_producer_consumer_through_l2(self):
        """Core 1 reads what core 0 wrote once it is written back.

        The hierarchy models no cross-L1 coherence protocol (the
        paper's workloads are share-nothing per core); cross-core
        visibility flows through explicit writebacks, so the producer
        clwb's the line into the shared L2 first.
        """
        config = fast_config(num_cores=2)
        producer = TraceBuilder("producer")
        producer.store_u64(0x1000, 0xBEEF)
        producer.clwb(0x1000)
        producer.persist_barrier()
        consumer = TraceBuilder("consumer")
        consumer.compute(10000.0)  # start after the producer's writeback
        consumer.load(0x1000, 8)
        machine = Machine(config, "sca")
        machine.run([producer.build(), consumer.build()])
        assert machine.hierarchy.read_current(1, 0x1000, 8) == (0xBEEF).to_bytes(8, "little")

    def test_shared_counter_cache_across_cores(self):
        """Core 1's read of a line core 0 wrote hits the shared counter
        cache (one controller-level cache, as in Table 2)."""
        config = fast_config(num_cores=2)
        t0 = TraceBuilder("w")
        t0.store_u64(0x1000, 1)
        t0.clwb(0x1000)
        t0.persist_barrier()
        machine = Machine(config, "sca")
        machine.run([t0.build()])
        assert machine.controller.engine.counter_cache.contains(0x1000)


class TestContention:
    def test_disjoint_cores_scale_well(self):
        single = run_workload("sca", "array", config=bench_config(1), params=PARAMS)
        dual = run_workload("sca", "array", config=bench_config(2), params=PARAMS)
        assert dual.stats.transactions == 2 * single.stats.transactions
        # Throughput should grow substantially (disjoint arenas).
        assert (
            dual.stats.throughput_txn_per_s
            > 1.5 * single.stats.throughput_txn_per_s
        )

    def test_contention_shows_in_runtime(self):
        """Eight cores on one controller cannot be 8x as fast as one
        core on the write-heavy queue workload."""
        single = run_workload("queue", "queue") if False else run_workload(
            "sca", "queue", config=bench_config(1), params=PARAMS
        )
        octo = run_workload("sca", "queue", config=bench_config(8), params=PARAMS)
        speedup = octo.stats.throughput_txn_per_s / single.stats.throughput_txn_per_s
        assert speedup < 8.0

    def test_core_finish_times_are_balanced(self):
        """Identical per-core work finishes within a reasonable spread
        (the min-time scheduling discipline is fair)."""
        outcome = run_workload("sca", "array", config=bench_config(4), params=PARAMS)
        finishes = [core.finish_ns for core in outcome.stats.per_core]
        assert max(finishes) < 2.0 * min(finishes)


class TestSharedQueues:
    def test_paired_writes_from_all_cores_counted(self):
        outcome = run_workload("sca", "array", config=bench_config(2), params=PARAMS)
        # Each core's transactions contribute 2 CA pairs each (arm+commit),
        # minus any pair-to-pair merges in the queue.
        txns = outcome.stats.transactions
        paired = outcome.result.controller.stats.paired_writes
        assert paired == 2 * txns

    def test_multicore_crash_images_cover_both_arenas(self):
        from repro.crash.injector import CrashInjector

        outcome = run_workload("sca", "array", config=bench_config(2), params=PARAMS)
        injector = CrashInjector(outcome.result)
        image = injector.crash_at(outcome.stats.runtime_ns + 1e9)
        touched = set(image.device.touched_lines())
        for run in outcome.runs:
            arena_lines = {
                line
                for txn in run.history
                for line, _old, _new in txn.writes
            }
            assert arena_lines <= touched
