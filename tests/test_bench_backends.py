"""Pluggable execution backends: ladder, lease protocol, backoff."""

import os
import time

import pytest

from repro.bench.backends import (
    BACKENDS,
    BackendSpec,
    BackendUnavailable,
    ExecutorCounters,
    FALLBACK_LADDER,
    InlineBackend,
    PoolBackend,
    WorkQueueBackend,
    make_backend,
)
from repro.bench.parallel import SweepExecutor
from repro.errors import JobExecutionError


# Worker functions must be module-level so child processes can resolve
# them after fork/pickle.


def double(item):
    return item * 2


def fail_always(item):
    raise ValueError("permanent failure on %s" % item)


def fail_unless_sentinel(item):
    if item.startswith("fail:"):
        sentinel = item[len("fail:"):]
        if not os.path.exists(sentinel):
            with open(sentinel, "w", encoding="utf-8") as stream:
                stream.write("first attempt\n")
            raise ValueError("transient worker failure")
    return "done:%s" % item


def _spec(**overrides):
    spec = BackendSpec(workers=2, retry_backoff_s=0.0)
    for name, value in overrides.items():
        setattr(spec, name, value)
    return spec


def _run(backend, fn, items, **kwargs):
    results = [None] * len(items)
    try:
        backend.run(fn, list(items), results, **kwargs)
    finally:
        backend.close()
    return results


class TestRegistryAndLadder:
    def test_registry_names(self):
        assert set(BACKENDS) == {"inline", "pool", "workqueue"}
        assert FALLBACK_LADDER == {
            "workqueue": "pool",
            "pool": "inline",
            "inline": None,
        }

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            make_backend("carrier-pigeon", _spec())
        with pytest.raises(ValueError, match="unknown execution backend"):
            SweepExecutor(workers=2, backend="carrier-pigeon")

    def test_unwritable_queue_dir_falls_back_to_pool(self, tmp_path):
        # A file where the queue directory should be makes the
        # workqueue rung unconstructible.
        bogus = tmp_path / "not-a-dir"
        bogus.write_text("occupied")
        spec = _spec(queue_dir=str(bogus))
        backend = make_backend("workqueue", spec)
        try:
            assert backend.name == "pool"
            assert spec.counters.backend_fallbacks == 1
        finally:
            backend.close()

    def test_fallback_counts_every_hop(self, tmp_path, monkeypatch):
        from repro.bench import backends as backends_module

        def refuse(spec):
            raise BackendUnavailable("pool refused for the test")

        monkeypatch.setitem(backends_module.BACKENDS, "pool", refuse)
        bogus = tmp_path / "not-a-dir"
        bogus.write_text("occupied")
        spec = _spec(queue_dir=str(bogus))
        backend = make_backend("workqueue", spec)
        try:
            assert backend.name == "inline"
            assert spec.counters.backend_fallbacks == 2
        finally:
            backend.close()


class TestBackendEquivalence:
    @pytest.mark.parametrize("name", ["inline", "pool", "workqueue"])
    def test_same_results_every_backend(self, name):
        spec = _spec()
        backend = make_backend(name, spec)
        seen = []
        results = _run(
            backend,
            double,
            [1, 2, 3, 4, 5],
            on_result=lambda index, value: seen.append((index, value)),
        )
        assert results == [2, 4, 6, 8, 10]
        assert sorted(seen) == [(0, 2), (1, 4), (2, 6), (3, 8), (4, 10)]

    def test_inline_is_serial_and_ordered(self):
        backend = InlineBackend(_spec(workers=1))
        order = []
        _run(backend, double, [3, 1, 2], on_result=lambda i, v: order.append(i))
        assert order == [0, 1, 2]


class TestPoolBackoff:
    def test_no_sleep_after_final_retry_round(self, caplog):
        # fail_always exhausts max_retries + 1 attempts; backoff must be
        # slept only *between* rounds (2 sleeps for max_retries=2),
        # never after the last attempt, and the total is exposed.
        spec = _spec(max_retries=2, retry_backoff_s=0.05)
        backend = PoolBackend(spec)
        with pytest.raises(ValueError, match="permanent failure"):
            _run(backend, fail_always, ["x"])
        expected = 0.05 * (2 ** 0) + 0.05 * (2 ** 1)
        assert spec.counters.backoff_slept_s == pytest.approx(expected)
        assert spec.counters.retries == 2
        assert spec.counters.pool_fallbacks == 1

    def test_no_backoff_when_first_attempt_succeeds(self):
        spec = _spec(max_retries=2, retry_backoff_s=5.0)
        backend = PoolBackend(spec)
        start = time.monotonic()
        assert _run(backend, double, [7]) == [14]
        assert time.monotonic() - start < 4.0
        assert spec.counters.backoff_slept_s == 0.0

    def test_transient_failure_retries_then_succeeds(self, tmp_path):
        sentinel = tmp_path / "sentinel"
        spec = _spec(max_retries=2, retry_backoff_s=0.01)
        backend = PoolBackend(spec)
        results = _run(backend, fail_unless_sentinel, ["fail:%s" % sentinel])
        assert results == ["done:fail:%s" % sentinel]
        assert spec.counters.retries == 1
        assert spec.counters.backoff_slept_s == pytest.approx(0.01)


class TestWorkQueueProtocol:
    def test_exactly_once_publication(self, tmp_path):
        spec = _spec(queue_dir=str(tmp_path / "q"), lease_timeout_s=5.0)
        backend = WorkQueueBackend(spec)
        results = _run(backend, double, [10, 11, 12])
        assert results == [20, 22, 24]
        assert spec.counters.results_published == 3
        assert spec.counters.results_reused == 0
        assert spec.counters.jobs_lost == 0

    def test_idempotent_reuse_across_runs(self, tmp_path):
        queue_dir = str(tmp_path / "q")
        first = _spec(queue_dir=queue_dir, lease_timeout_s=5.0)
        _run(WorkQueueBackend(first), double, [10, 11, 12])
        second = _spec(queue_dir=queue_dir, lease_timeout_s=5.0)
        results = _run(WorkQueueBackend(second), double, [10, 11, 12])
        assert results == [20, 22, 24]
        assert second.counters.results_published == 0
        assert second.counters.results_reused == 3

    def test_duplicate_items_share_one_job(self, tmp_path):
        spec = _spec(queue_dir=str(tmp_path / "q"), lease_timeout_s=5.0)
        results = _run(WorkQueueBackend(spec), double, [9, 9, 9])
        assert results == [18, 18, 18]
        assert spec.counters.results_published == 1

    def test_killed_worker_lease_expires_and_job_reruns(self, tmp_path):
        spec = _spec(
            queue_dir=str(tmp_path / "q"),
            lease_timeout_s=0.5,
            chaos_plan={0: ("kill",)},
        )
        results = _run(WorkQueueBackend(spec), double, [5, 6])
        assert results == [10, 12]
        assert spec.counters.leases_expired >= 1
        assert spec.counters.leases_reclaimed >= 1
        assert spec.counters.worker_respawns >= 1
        assert spec.counters.jobs_lost == 0

    def test_corrupt_result_is_quarantined_and_rerun(self, tmp_path):
        queue_dir = tmp_path / "q"
        spec = _spec(
            queue_dir=str(queue_dir),
            lease_timeout_s=0.5,
            chaos_plan={0: ("corrupt",)},
        )
        results = _run(WorkQueueBackend(spec), double, [5, 6])
        assert results == [10, 12]
        assert spec.counters.corrupt_results == 1
        assert list((queue_dir / "quarantine").iterdir())

    def test_duplicate_claim_fault_keeps_exactly_once(self, tmp_path):
        # The worker publishes, then hands the job back as if never
        # run.  Whether or not a second claimant gets to it before
        # shutdown, the result must land exactly once.
        spec = _spec(
            queue_dir=str(tmp_path / "q"),
            lease_timeout_s=0.5,
            chaos_plan={1: ("duplicate",)},
        )
        results = _run(WorkQueueBackend(spec), double, [5, 6])
        assert results == [10, 12]
        assert spec.counters.results_published == 2
        assert spec.counters.jobs_lost == 0

    def test_second_publication_is_dropped(self, tmp_path):
        # The primitive behind the duplicate defence: publication is
        # hardlink-if-absent, so a second publish never overwrites.
        from repro.bench.backends.workqueue import _frame, _publish, _read_frame

        queue_dir = tmp_path / "q"
        for sub in ("results", "events"):
            (queue_dir / sub).mkdir(parents=True)
        assert _publish(str(queue_dir), "job1", _frame(b"first")) is True
        assert _publish(str(queue_dir), "job1", _frame(b"second")) is False
        assert _read_frame(str(queue_dir / "results" / "job1.res")) == b"first"
        dup_events = [
            name
            for name in os.listdir(queue_dir / "events")
            if name.startswith("job1.dup.")
        ]
        assert len(dup_events) == 1

    def test_poison_job_quarantined_then_finished_inline(self, tmp_path):
        spec = _spec(
            queue_dir=str(tmp_path / "q"),
            lease_timeout_s=5.0,
            max_lease_failures=2,
        )
        # fail_always burns every lease with worker-side errors; after
        # max_lease_failures the job is poisoned and the last-chance
        # inline attempt reproduces the real exception.
        backend = WorkQueueBackend(spec)
        with pytest.raises(ValueError, match="permanent failure"):
            _run(backend, fail_always, ["x"])
        assert spec.counters.poison_jobs == 1

    def test_executor_reports_workqueue_stats(self, tmp_path):
        executor = SweepExecutor(
            workers=2, backend="workqueue", queue_dir=str(tmp_path / "q")
        )
        assert executor.map(double, [1, 2, 3]) == [2, 4, 6]
        stats = executor.stats()
        assert stats["backend"] == "workqueue"
        assert stats["results_published"] == 3
        assert stats["jobs_lost"] == 0
        assert stats["backend_fallbacks"] == 0
