"""Tests for the mixed get/put/delete workload."""

import pytest

from repro.bench.harness import run_workload
from repro.config import KB, bench_config, fast_config
from repro.crash.checker import sweep_crash_points
from repro.errors import WorkloadError
from repro.sim.trace import OpKind, TraceBuilder
from repro.txn.heap import MemoryLayout
from repro.txn.manager import make_transactions
from repro.workloads.mixed import MixedKVWorkload
from repro.workloads.base import WorkloadParams

PARAMS = WorkloadParams(operations=30, footprint_bytes=8 * KB)


def generate(workload):
    config = fast_config()
    layout = MemoryLayout.build(config, log_capacity=160)
    builder = TraceBuilder("mixed")
    txns = make_transactions("undo", builder, layout.arena(0))
    run = workload.generate(builder, txns, layout.arena(0))
    return builder.build(), run


class TestMix:
    def test_operations_split_by_fractions(self):
        workload = MixedKVWorkload(PARAMS, get_fraction=0.5, delete_fraction=0.2)
        generate(workload)
        total = workload.gets + workload.deletes
        measured_puts = workload.puts - max(4, PARAMS.operations // 4)  # minus seeding
        assert workload.gets > 0
        assert workload.deletes > 0
        assert measured_puts > 0
        assert total + measured_puts == PARAMS.operations

    def test_pure_read_mix_emits_no_measured_writes(self):
        workload = MixedKVWorkload(PARAMS, get_fraction=1.0, delete_fraction=0.0)
        _trace, run = generate(workload)
        seed_txns = -(-max(4, PARAMS.operations // 4) // 16)
        # After seeding, get-only transactions stage no writes, so the
        # recorder records empty txns only.
        measured = run.history[seed_txns:]
        assert all(not txn.writes for txn in measured)

    def test_gets_mostly_hit_live_keys(self):
        workload = MixedKVWorkload(PARAMS, get_fraction=0.6, delete_fraction=0.0)
        generate(workload)
        assert workload.get_hits >= workload.gets * 0.9

    def test_deleted_keys_are_gone(self):
        workload = MixedKVWorkload(
            WorkloadParams(operations=40, footprint_bytes=8 * KB),
            get_fraction=0.0,
            delete_fraction=0.5,
        )
        _trace, run = generate(workload)
        assert workload.deletes > 0
        # Model check: tombstones exist for deletions that were not
        # later overwritten by a put reusing the slot.
        tombstones = 0
        for line_address in run.final_model.touched_lines():
            line = run.final_model.line(line_address)
            for pair in range(4):
                key = int.from_bytes(line[pair * 16 : pair * 16 + 8], "little")
                if key == (1 << 64) - 1:
                    tombstones += 1
        assert 1 <= tombstones <= workload.deletes

    def test_bad_fractions_rejected(self):
        with pytest.raises(WorkloadError):
            MixedKVWorkload(PARAMS, get_fraction=1.5)
        with pytest.raises(WorkloadError):
            MixedKVWorkload(PARAMS, get_fraction=0.8, delete_fraction=0.4)


class TestIntegration:
    def test_runs_under_harness(self):
        outcome = run_workload("sca", "mixed", params=PARAMS)
        assert outcome.stats.transactions == len(outcome.runs[0].history)

    def test_crash_consistency(self):
        outcome = run_workload(
            "sca", "mixed", params=WorkloadParams(operations=8, footprint_bytes=8 * KB)
        )
        report = sweep_crash_points(outcome.result, outcome.validator(0), max_points=50)
        assert report.all_consistent

    def test_read_heavy_mix_punishes_colocated_most(self):
        """The design-sensitivity property the mix parameter exposes:
        a read-heavy mix widens co-located's gap to SCA."""
        read_heavy = WorkloadParams(operations=40, footprint_bytes=64 * KB)
        config = bench_config()

        def gap(get_fraction):
            import repro.workloads.registry as registry

            workload_cls = registry.EXTRA_WORKLOADS["mixed"]
            # Temporarily parameterize via a factory subclass.
            class Parameterized(workload_cls):  # type: ignore[valid-type,misc]
                def __init__(self, params=None):
                    super().__init__(params, get_fraction=get_fraction)

            registry.EXTRA_WORKLOADS["mixed"] = Parameterized
            try:
                sca = run_workload("sca", "mixed", config=config, params=read_heavy)
                colocated = run_workload(
                    "co-located", "mixed", config=config, params=read_heavy
                )
            finally:
                registry.EXTRA_WORKLOADS["mixed"] = workload_cls
            return colocated.stats.runtime_ns / sca.stats.runtime_ns

        assert gap(0.8) > gap(0.0)
