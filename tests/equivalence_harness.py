"""Golden-fingerprint equivalence harness for controller refactors.

The memory controller is periodically restructured (most recently:
decomposition into layout / atomicity / integrity policy layers).  A
refactor of the controller must not change anything observable: the
paper's numbers are simulation output, so "equivalent" means
*bit-identical* — exact float timings, exact traffic counts, exact
journal images, exact checkpoint-resume behaviour.

This module pins that bar.  ``capture()`` runs every registered design
over seed workloads and records, per scenario:

* ``fingerprint`` — :func:`repro.sim.snapshot.result_fingerprint` of an
  uninterrupted run (covers timing, traffic, the journal's final image
  and transaction commit times),
* ``resume_fingerprint`` — the fingerprint of a run checkpointed at the
  midpoint event, serialized, restored into a fresh machine and run to
  completion (covers per-layer ``get_state``/``set_state``),
* ``stats`` — the full :class:`ControllerStats` field dict,
* ``events`` — the machine's total event count.

``python -m tests.equivalence_harness --capture`` (from the repo root,
with ``PYTHONPATH=src:.``) refreshes ``tests/fixtures/
golden_equivalence.json``.  The committed fixture was captured from the
pre-refactor monolithic controller; ``tests/test_refactor_equivalence.py``
replays it against whatever the controller is now.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
from typing import Dict, List, Tuple

from repro.bench.harness import build_traces
from repro.config import fast_config
from repro.sim.machine import Machine
from repro.sim.snapshot import result_fingerprint
from repro.workloads.base import WorkloadParams

FIXTURE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "fixtures", "golden_equivalence.json"
)

#: Fixture schema version (bump when scenarios change).
SCHEMA = 1

#: Every design registered at capture time: the seven base designs and
#: the four Bonsai-Merkle-tree variants (both native modes and both
#: mode ablations).
ALL_DESIGN_NAMES: Tuple[str, ...] = (
    "no-encryption",
    "ideal",
    "unsafe",
    "co-located",
    "co-located-cc",
    "fca",
    "sca",
    "fca+bmt",
    "sca+bmt",
    "fca+bmt-lazy",
    "sca+bmt-eager",
)

#: (workload, mechanism, operations, seed) seed scenarios.  ``hash``
#: under undo logging exercises counter-cache evictions, ccwb flushes
#: and paired commits; ``array`` under redo logging covers the other
#: mechanism family and a different access pattern.
SCENARIOS: Tuple[Tuple[str, str, int, int], ...] = (
    ("hash", "undo", 5, 11),
    ("array", "redo", 6, 23),
)


def scenario_key(design: str, workload: str, mechanism: str, operations: int, seed: int) -> str:
    return "%s/%s/%s/ops%d/seed%d" % (design, workload, mechanism, operations, seed)


def run_scenario(
    design: str, workload: str, mechanism: str, operations: int, seed: int
) -> Dict[str, object]:
    """Run one (design, workload) cell and digest everything observable."""
    config = fast_config(num_cores=2, functional=True)
    traces, _runs, _layout = build_traces(
        workload, config, mechanism, WorkloadParams(operations=operations, seed=seed)
    )
    machine = Machine(config, design)
    result = machine.run(traces)
    fingerprint = result_fingerprint(result)
    stats = dataclasses.asdict(result.controller.stats)

    # Checkpoint at the midpoint event, round-trip the state through
    # real serialization, restore into a *fresh* machine, finish, and
    # fingerprint the resumed result.
    total = machine.events_executed
    cut = max(1, total // 2)
    partial = Machine(config, design)
    partial.begin(traces)
    for _ in range(cut):
        partial.step()
    blob = pickle.dumps(partial.get_state(), protocol=4)
    resumed = Machine.from_state(pickle.loads(blob))
    while resumed.step():
        pass
    resume_fingerprint = result_fingerprint(resumed.finish())

    return {
        "fingerprint": fingerprint,
        "resume_fingerprint": resume_fingerprint,
        "events": total,
        "stats": stats,
    }


def capture() -> Dict[str, object]:
    """Run every (design, scenario) cell and return the fixture document."""
    cells: Dict[str, Dict[str, object]] = {}
    for design in ALL_DESIGN_NAMES:
        for workload, mechanism, operations, seed in SCENARIOS:
            key = scenario_key(design, workload, mechanism, operations, seed)
            cells[key] = run_scenario(design, workload, mechanism, operations, seed)
    return {"schema": SCHEMA, "designs": list(ALL_DESIGN_NAMES), "cells": cells}


def load_fixture() -> Dict[str, object]:
    with open(FIXTURE_PATH, "r", encoding="utf-8") as stream:
        return json.load(stream)


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--capture",
        action="store_true",
        help="re-capture %s from the current controller" % FIXTURE_PATH,
    )
    args = parser.parse_args()
    if not args.capture:
        parser.error("nothing to do (pass --capture)")
    document = capture()
    os.makedirs(os.path.dirname(FIXTURE_PATH), exist_ok=True)
    with open(FIXTURE_PATH, "w", encoding="utf-8") as stream:
        json.dump(document, stream, indent=1, sort_keys=True)
        stream.write("\n")
    print("captured %d cells -> %s" % (len(document["cells"]), FIXTURE_PATH))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
