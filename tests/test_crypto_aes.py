"""AES-128 correctness against the FIPS-197 / NIST published vectors."""

import pytest

from repro.crypto.aes import AES128
from repro.errors import CryptoError


class TestKnownVectors:
    def test_fips197_appendix_b(self):
        """The FIPS-197 Appendix B worked example."""
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert AES128(key).encrypt_block(plaintext) == expected

    def test_fips197_appendix_c1(self):
        """FIPS-197 Appendix C.1 (AES-128 example vector)."""
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert AES128(key).encrypt_block(plaintext) == expected

    def test_nist_sp800_38a_ecb_block1(self):
        """First ECB block of the NIST SP 800-38A AES-128 test."""
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        expected = bytes.fromhex("3ad77bb40d7a3660a89ecaf32466ef97")
        assert AES128(key).encrypt_block(plaintext) == expected


class TestRoundTrip:
    def test_decrypt_inverts_encrypt(self):
        key = bytes(range(16))
        aes = AES128(key)
        for seed in range(8):
            block = bytes((seed * 17 + i * 31) % 256 for i in range(16))
            assert aes.decrypt_block(aes.encrypt_block(block)) == block

    def test_different_keys_differ(self):
        block = bytes(16)
        first = AES128(b"A" * 16).encrypt_block(block)
        second = AES128(b"B" * 16).encrypt_block(block)
        assert first != second

    def test_single_bit_flip_diffuses(self):
        """Flipping one plaintext bit changes roughly half the output."""
        aes = AES128(bytes(range(16)))
        base = aes.encrypt_block(bytes(16))
        flipped = aes.encrypt_block(bytes([1] + [0] * 15))
        differing_bits = sum(
            bin(a ^ b).count("1") for a, b in zip(base, flipped)
        )
        assert 32 <= differing_bits <= 96


class TestValidation:
    def test_rejects_wrong_key_length(self):
        with pytest.raises(CryptoError):
            AES128(b"too-short")

    def test_rejects_wrong_block_length_encrypt(self):
        with pytest.raises(CryptoError):
            AES128(bytes(16)).encrypt_block(b"short")

    def test_rejects_wrong_block_length_decrypt(self):
        with pytest.raises(CryptoError):
            AES128(bytes(16)).decrypt_block(b"short")
