"""The headline crash-consistency integration tests.

Every crash-consistent design must recover a consistent state from a
power failure injected at *every* interesting instant of every
workload; the unsafe design must fail somewhere.  This is the paper's
central correctness claim, exercised end to end.
"""

import pytest

from repro.bench.harness import run_workload
from repro.config import KB, fast_config
from repro.crash.checker import sweep_crash_points
from repro.workloads.base import WorkloadParams

PARAMS = WorkloadParams(operations=8, footprint_bytes=8 * KB)
SAFE_DESIGNS = ["sca", "fca", "ideal", "co-located", "co-located-cc", "no-encryption"]


class TestCrashConsistencySweeps:
    @pytest.mark.parametrize("design", SAFE_DESIGNS)
    @pytest.mark.parametrize("workload", ["array", "queue", "hash"])
    def test_safe_design_recovers_everywhere(self, design, workload):
        outcome = run_workload(design, workload, params=PARAMS)
        report = sweep_crash_points(
            outcome.result, outcome.validator(0), max_points=80
        )
        failure = report.first_failure()
        assert report.all_consistent, (
            "first failure at %.1f ns: %s"
            % (failure.crash_ns, failure.problems[:1])
        )

    @pytest.mark.parametrize("design", SAFE_DESIGNS)
    def test_trees_recover_everywhere(self, design):
        outcome = run_workload(design, "rbtree", params=PARAMS)
        report = sweep_crash_points(
            outcome.result, outcome.validator(0), max_points=60
        )
        assert report.all_consistent

    def test_unsafe_design_fails_somewhere(self):
        outcome = run_workload("unsafe", "array", params=PARAMS)
        report = sweep_crash_points(
            outcome.result, outcome.validator(0), max_points=80
        )
        assert not report.all_consistent
        assert report.undecryptable_crashes > 0

    def test_redo_mechanism_recovers_everywhere(self):
        outcome = run_workload("sca", "array", mechanism="redo", params=PARAMS)
        report = sweep_crash_points(
            outcome.result, outcome.validator(0), max_points=80
        )
        assert report.all_consistent

    def test_multicore_crash_recovery(self):
        config = fast_config(num_cores=2)
        outcome = run_workload("sca", "array", config=config, params=PARAMS)
        for core in range(2):
            report = sweep_crash_points(
                outcome.result, outcome.validator(core), max_points=40
            )
            assert report.all_consistent, "core %d inconsistent" % core


class TestCommitDurability:
    def test_committed_transactions_survive(self):
        """A transaction whose commit barrier finished before the crash
        must be present in the recovered state (the validator enforces
        the minimum prefix)."""
        outcome = run_workload("sca", "array", params=PARAMS)
        end_times = outcome.result.txn_end_times[0]
        assert end_times
        report = sweep_crash_points(
            outcome.result, outcome.validator(0), max_points=100
        )
        assert report.all_consistent


class TestReportShape:
    def test_report_accounting(self):
        outcome = run_workload("sca", "array", params=PARAMS)
        report = sweep_crash_points(outcome.result, outcome.validator(0), max_points=30)
        assert report.total == len(report.outcomes)
        assert report.consistent + report.inconsistent == report.total
        assert report.design == "sca"
