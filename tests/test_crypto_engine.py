"""Tests for the encryption engine (write/read paths, counter flow)."""

import pytest

from repro.config import CACHE_LINE_SIZE, CounterCacheConfig, EncryptionConfig
from repro.crypto.counters import CounterStore
from repro.crypto.engine import EncryptionEngine

BASE = 1 << 20


@pytest.fixture
def engine():
    store = CounterStore(counter_region_base=BASE, memory_size_bytes=2 << 20)
    return EncryptionEngine(
        config=EncryptionConfig(),
        cache_config=CounterCacheConfig(size_bytes=4 * 1024, ways=4),
        counter_store=store,
        functional=True,
    )


LINE = bytes(i % 256 for i in range(CACHE_LINE_SIZE))


class TestWritePath:
    def test_global_counter_monotonic(self, engine):
        first = engine.encrypt_for_write(0x40, LINE)
        second = engine.encrypt_for_write(0x80, LINE)
        assert second.counter > first.counter

    def test_ciphertext_differs_from_plaintext(self, engine):
        result = engine.encrypt_for_write(0x40, LINE)
        assert result.ciphertext != LINE

    def test_rewrites_use_fresh_counters(self, engine):
        """Counter-mode never reuses a pad: rewriting the same line with
        the same data yields different ciphertext."""
        first = engine.encrypt_for_write(0x40, LINE)
        second = engine.encrypt_for_write(0x40, LINE)
        assert first.counter != second.counter
        assert first.ciphertext != second.ciphertext

    def test_write_miss_then_hit(self, engine):
        miss = engine.encrypt_for_write(0x40, LINE)
        hit = engine.encrypt_for_write(0x40, LINE)
        assert miss.counter_cache_hit is False
        assert hit.counter_cache_hit is True

    def test_counter_cached_after_write(self, engine):
        result = engine.encrypt_for_write(0x40, LINE)
        assert engine.counter_cache.lookup_for_read(0x40) == result.counter

    def test_timing_only_mode_produces_no_ciphertext(self):
        store = CounterStore(counter_region_base=BASE, memory_size_bytes=2 << 20)
        engine = EncryptionEngine(
            config=EncryptionConfig(),
            cache_config=CounterCacheConfig(size_bytes=4 * 1024, ways=4),
            counter_store=store,
            functional=False,
        )
        result = engine.encrypt_for_write(0x40, None)
        assert result.ciphertext is None
        assert result.counter == 1


class TestReadPath:
    def test_round_trip_through_engine(self, engine):
        written = engine.encrypt_for_write(0x40, LINE)
        engine.persist_counter_line(0, engine.counter_store.read_counter_line(0))
        engine.counter_store.write(0x40, written.counter)
        read = engine.decrypt_for_read(0x40, written.ciphertext)
        assert read.plaintext == LINE

    def test_read_uses_cached_counter_over_store(self, engine):
        """The cache's (newer) counter wins over the architectural one —
        the working copy is what decrypts forwarded data."""
        written = engine.encrypt_for_write(0x40, LINE)
        # Architectural store deliberately left stale (counter = 0).
        read = engine.decrypt_for_read(0x40, written.ciphertext)
        assert read.counter == written.counter
        assert read.plaintext == LINE

    def test_read_miss_fills_from_store(self, engine):
        engine.counter_store.write(0x40, 55)
        read = engine.decrypt_for_read(0x40, None)
        assert read.counter == 55
        assert read.counter_cache_hit is False
        # Second read hits.
        again = engine.decrypt_for_read(0x40, None)
        assert again.counter_cache_hit is True

    def test_miss_statistics_count_one_access_per_read(self, engine):
        engine.decrypt_for_read(0x40, None)
        stats = engine.counter_cache.stats
        assert stats.read_misses == 1
        assert stats.read_hits == 0


class TestEvictionChain:
    def test_dirty_eviction_surfaces_payload(self):
        """Filling past the cache's capacity evicts dirty counter lines
        whose values must reach the caller for writeback."""
        from repro.config import CounterCacheConfig
        from repro.crypto.counter_cache import GROUP_SPAN

        store = CounterStore(counter_region_base=BASE, memory_size_bytes=2 << 20)
        engine = EncryptionEngine(
            config=EncryptionConfig(),
            cache_config=CounterCacheConfig(size_bytes=1024, ways=2),
            counter_store=store,
            functional=False,
        )
        evicted = []
        # Touch many distinct groups so dirty lines get pushed out.
        for group in range(64):
            result = engine.encrypt_for_write(group * GROUP_SPAN, None)
            if result.evicted_counter_line is not None:
                evicted.append(result.evicted_counter_line)
        assert evicted, "expected dirty evictions from a tiny cache"
        for group_base, counters in evicted:
            assert len(counters) == 8
            assert any(value > 0 for value in counters)

    def test_persisting_evicted_line_syncs_store(self):
        from repro.config import CounterCacheConfig
        from repro.crypto.counter_cache import GROUP_SPAN

        store = CounterStore(counter_region_base=BASE, memory_size_bytes=2 << 20)
        engine = EncryptionEngine(
            config=EncryptionConfig(),
            cache_config=CounterCacheConfig(size_bytes=1024, ways=2),
            counter_store=store,
            functional=False,
        )
        first = engine.encrypt_for_write(0, None)
        for group in range(1, 64):
            result = engine.encrypt_for_write(group * GROUP_SPAN, None)
            if result.evicted_counter_line is not None:
                group_base, counters = result.evicted_counter_line
                engine.persist_counter_line(group_base, counters)
        # Group 0's counter was evicted and persisted at some point.
        assert store.read(0) == first.counter
