"""Tests for Start-Gap wear leveling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.nvm.startgap import StartGapLeveler, simulate_leveling


class TestMapping:
    def test_initial_mapping_is_identity(self):
        leveler = StartGapLeveler(num_lines=8)
        assert leveler.mapping_snapshot() == list(range(8))

    def test_mapping_is_injective_always(self):
        leveler = StartGapLeveler(num_lines=8, gap_move_interval=1)
        for step in range(100):
            leveler.record_write(step % 8)
            mapping = leveler.mapping_snapshot()
            assert len(set(mapping)) == len(mapping), "collision after %d" % step

    def test_gap_slot_never_used(self):
        leveler = StartGapLeveler(num_lines=8, gap_move_interval=1)
        for step in range(50):
            leveler.record_write(step % 8)
            assert leveler.gap not in leveler.mapping_snapshot()

    def test_mapping_shifts_after_full_rotation(self):
        leveler = StartGapLeveler(num_lines=4, gap_move_interval=1)
        initial = leveler.mapping_snapshot()
        # One full sweep = num_slots gap moves.
        for _ in range(leveler.num_slots):
            leveler.record_write(0)
        assert leveler.stats.full_rotations == 1
        assert leveler.mapping_snapshot() != initial

    def test_out_of_range_rejected(self):
        leveler = StartGapLeveler(num_lines=4)
        with pytest.raises(ConfigurationError):
            leveler.physical_slot(4)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            StartGapLeveler(num_lines=1)
        with pytest.raises(ConfigurationError):
            StartGapLeveler(num_lines=4, gap_move_interval=0)


class TestLeveling:
    def test_hot_line_spreads_over_slots(self):
        """Writing one logical line forever must wear many slots."""
        leveler = StartGapLeveler(num_lines=8, gap_move_interval=4)
        slots = set()
        for _ in range(8 * (leveler.num_slots**2)):
            slots.add(leveler.record_write(0))
        assert len(slots) >= leveler.num_lines // 2

    def test_simulate_leveling_improves_hot_spot(self):
        # One line takes 90% of the writes.
        writes = {0: 900}
        for line in range(1, 10):
            writes[line] = 11
        report = simulate_leveling(writes, region_lines=10, gap_move_interval=5)
        assert report["leveled_max"] < report["unleveled_max"]
        assert report["lifetime_improvement"] > 1.5

    def test_uniform_traffic_not_made_worse(self):
        writes = {line: 100 for line in range(10)}
        report = simulate_leveling(writes, region_lines=10, gap_move_interval=10)
        # Leveling a uniform workload should stay near-uniform.
        assert report["leveled_max"] <= report["unleveled_max"] * 1.6

    def test_remap_overhead_bounded_by_interval(self):
        writes = {line: 100 for line in range(8)}
        report = simulate_leveling(writes, region_lines=8, gap_move_interval=10)
        assert report["remap_overhead"] == pytest.approx(0.1, abs=0.02)

    def test_empty_histogram(self):
        report = simulate_leveling({}, region_lines=8)
        assert report["lifetime_improvement"] == 1.0


class TestProperties:
    @given(
        st.integers(2, 32),
        st.integers(1, 7),
        st.lists(st.integers(0, 31), min_size=1, max_size=200),
    )
    @settings(max_examples=50, deadline=None)
    def test_mapping_always_a_permutation(self, num_lines, interval, accesses):
        leveler = StartGapLeveler(num_lines=num_lines, gap_move_interval=interval)
        for access in accesses:
            leveler.record_write(access % num_lines)
        mapping = leveler.mapping_snapshot()
        assert len(set(mapping)) == num_lines
        assert all(0 <= slot < leveler.num_slots for slot in mapping)
