"""Tests for traces and the trace builder."""

import pytest

from repro.config import CACHE_LINE_SIZE
from repro.errors import TraceError
from repro.sim.trace import Op, OpKind, Trace, TraceBuilder, merge_round_robin


class TestOpValidation:
    def test_rejects_oversized_memory_op(self):
        with pytest.raises(TraceError):
            Op(kind=OpKind.LOAD, address=0, length=128)

    def test_rejects_zero_length(self):
        with pytest.raises(TraceError):
            Op(kind=OpKind.STORE, address=0, length=0)

    def test_rejects_mismatched_data_length(self):
        with pytest.raises(TraceError):
            Op(kind=OpKind.STORE, address=0, length=8, data=b"123")

    def test_rejects_negative_compute(self):
        with pytest.raises(TraceError):
            Op(kind=OpKind.COMPUTE, duration_ns=-1.0)


class TestBuilder:
    def test_fluent_chaining(self):
        builder = TraceBuilder("t")
        trace = (
            builder.txn_begin()
            .store_u64(0x40, 1)
            .clwb(0x40)
            .ccwb(0x40)
            .persist_barrier()
            .txn_end()
            .build()
        )
        kinds = [op.kind for op in trace]
        assert kinds == [
            OpKind.TXN_BEGIN,
            OpKind.STORE,
            OpKind.CLWB,
            OpKind.CCWB,
            OpKind.SFENCE,
            OpKind.TXN_END,
        ]

    def test_shadow_tracks_stores(self):
        builder = TraceBuilder("t")
        builder.store(0x40, b"\x01\x02\x03\x04\x05\x06\x07\x08")
        assert builder.shadow_bytes(0x40, 8) == bytes(range(1, 9))
        assert builder.shadow_bytes(0x48, 4) == bytes(4)

    def test_store_u64_little_endian(self):
        builder = TraceBuilder("t")
        builder.store_u64(0x40, 0x0102)
        assert builder.shadow_bytes(0x40, 2) == b"\x02\x01"

    def test_timing_only_builder_drops_payloads(self):
        builder = TraceBuilder("t", functional=False)
        builder.store(0x40, b"\xff" * 8)
        store = builder.build().ops[0]
        assert store.data is None
        assert store.length == 8

    def test_clwb_span_covers_all_lines(self):
        builder = TraceBuilder("t")
        builder.clwb_span(0x40, 130)  # 0x40..0xC2 -> lines 0x40, 0x80, 0xC0
        addresses = [op.address for op in builder.build()]
        assert addresses == [0x40, 0x80, 0xC0]

    def test_ccwb_span_covers_groups(self):
        builder = TraceBuilder("t")
        builder.ccwb_span(0, 1024)  # two 512 B groups
        addresses = [op.address for op in builder.build()]
        assert addresses == [0, 512]


class TestTrace:
    def test_counts(self):
        builder = TraceBuilder("t")
        builder.load(0).load(64).store_u64(0, 1)
        counts = builder.build().counts()
        assert counts[OpKind.LOAD] == 2
        assert counts[OpKind.STORE] == 1

    def test_transactions_counted_by_end_markers(self):
        builder = TraceBuilder("t")
        builder.txn_begin().txn_end().txn_begin().txn_end()
        assert builder.build().transactions() == 2

    def test_merge_round_robin_interleaves(self):
        a = TraceBuilder("a")
        a.load(0).load(64)
        b = TraceBuilder("b")
        b.load(128)
        merged = merge_round_robin([a.build(), b.build()])
        assert [op.address for op in merged] == [0, 128, 64]
