"""Property-based crash-consistency testing over randomized programs.

Hypothesis generates random transaction mixes (target lines, values,
sizes); for each, we run under SCA and FCA, inject crashes at sampled
instants, run recovery, and assert the recovered state is a consistent
transaction prefix.  This is the strongest correctness statement the
library makes about the paper's mechanism.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import CACHE_LINE_SIZE, fast_config
from repro.crash.checker import sweep_crash_points
from repro.crash.injector import CrashInjector
from repro.crash.recovery import RecoveryManager
from repro.sim.machine import Machine
from repro.sim.trace import TraceBuilder
from repro.txn.heap import MemoryLayout
from repro.txn.undolog import UndoLogTransactions, recover_undo_log

# A program is a list of transactions; each transaction writes a set of
# (line index, fill byte) pairs.
TRANSACTIONS = st.lists(
    st.lists(
        st.tuples(st.integers(0, 11), st.integers(1, 255)),
        min_size=1,
        max_size=4,
    ),
    min_size=1,
    max_size=5,
)


def build_program(transactions, config):
    """Author the undo-logged trace and the expected prefix states."""
    layout = MemoryLayout.build(config, log_capacity=16)
    arena = layout.arena(0)
    builder = TraceBuilder("prop")
    txns = UndoLogTransactions(builder, arena)
    data_base = arena.heap.alloc(12 * CACHE_LINE_SIZE)

    state = {}
    prefix_states = [dict(state)]
    for transaction in transactions:
        writes = []
        staged = dict(state)
        for line_index, fill in transaction:
            address = data_base + line_index * CACHE_LINE_SIZE
            old = staged.get(address, bytes(CACHE_LINE_SIZE))
            new = bytes([fill]) * CACHE_LINE_SIZE
                # note: repeated lines within one txn collapse to the last write
            staged[address] = new
        for address, new in staged.items():
            if state.get(address, bytes(CACHE_LINE_SIZE)) != new:
                writes.append((address, state.get(address, bytes(CACHE_LINE_SIZE)), new))
        if writes:
            txns.run(writes)
            state = staged
            prefix_states.append(dict(state))
        else:
            prefix_states.append(dict(state))
    return builder.build(), arena, prefix_states, data_base


@pytest.mark.parametrize("design", ["sca", "fca"])
@given(transactions=TRANSACTIONS)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_recovery_is_always_a_transaction_prefix(design, transactions):
    config = fast_config()
    trace, arena, prefix_states, data_base = build_program(transactions, config)
    result = Machine(config, design).run([trace])
    injector = CrashInjector(result)
    manager = RecoveryManager(config.encryption)
    tracked = sorted({a for s in prefix_states for a in s})
    for crash_ns in injector.interesting_times(limit=25):
        recovered = manager.recover(injector.crash_at(crash_ns))
        recover_undo_log(recovered, arena)
        snapshot = {a: recovered.read(a, CACHE_LINE_SIZE) for a in tracked}
        matched = any(
            all(
                snapshot[a] == prefix.get(a, bytes(CACHE_LINE_SIZE))
                for a in tracked
            )
            for prefix in prefix_states
        )
        assert matched, "no prefix matches at %.1f ns under %s" % (crash_ns, design)


@given(transactions=TRANSACTIONS)
@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_final_state_always_equals_last_prefix(transactions):
    config = fast_config()
    trace, arena, prefix_states, _ = build_program(transactions, config)
    result = Machine(config, "sca").run([trace])
    injector = CrashInjector(result)
    manager = RecoveryManager(config.encryption)
    recovered = manager.recover(
        injector.crash_at(result.stats.runtime_ns + 1e9)
    )
    recover_undo_log(recovered, arena)
    final = prefix_states[-1]
    for address, expected in final.items():
        assert recovered.read(address, CACHE_LINE_SIZE) == expected
