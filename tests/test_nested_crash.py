"""Nested crashes: fault injection during recovery, idempotent resume.

The properties this suite pins down:

* **Determinism** — the same (seed, crash image, fault schedule) drives
  recovery through the *identical* escalation-ladder path and ends in
  bit-identical recovered memory, across every transaction mechanism.
* **Resume equivalence** — a recovery interrupted by a nested crash and
  resumed from the durable state it left behind converges to the same
  bytes an uninterrupted recovery produces.
* **Never silent** — across all designs, a second power failure during
  recovery never converts a clean crash into silent corruption (or a
  stuck recovery): the session ends consistent, or loudly detected.
* **Campaign integration** — the ``--nested-crash`` axis tallies the
  two nested outcome buckets and the journal dedupes retried jobs.
"""

import dataclasses
import json
from functools import lru_cache

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.harness import run_workload
from repro.bench.parallel import SweepExecutor
from repro.config import KB, fast_config
from repro.crash.campaign import (
    CampaignRunner,
    CampaignSpec,
    Outcome,
    run_campaign_job,
)
from repro.crash.counter_recovery import CounterRecoverer
from repro.crash.injector import CrashInjector
from repro.crash.recovery import GarbageRead, RecoveredMemory, RecoveryManager
from repro.crash.session import RecoveryContext, RecoverySession, error_digest
from repro.errors import CampaignError, NestedCrash
from repro.faults.recovery import (
    RECOVERY_PHASES,
    RecoveryFaultPlan,
    RecoveryFaultPoint,
    nested_point_grid,
)
from repro.faults.registry import make_fault_model
from repro.workloads.base import WorkloadParams

#: One design per distinct recovery shape: unencrypted, split-counter,
#: full-counter + integrity tree (search + repair rungs reachable).
DESIGNS = ("no-encryption", "sca", "fca+bmt")
MECHANISMS = ("undo", "redo", "checksum-undo")
#: The full design roster for the never-silent sweep.
ALL_DESIGNS = (
    "no-encryption", "ideal", "co-located", "co-located-cc",
    "fca", "sca", "fca+bmt", "sca+bmt", "unsafe",
)


@lru_cache(maxsize=None)
def outcome_for(design, mechanism="undo"):
    return run_workload(
        design,
        "array",
        config=fast_config(),
        mechanism=mechanism,
        params=WorkloadParams(operations=5, seed=11, footprint_bytes=8 * KB),
    )


@lru_cache(maxsize=None)
def crash_times_for(design, mechanism="undo"):
    injector = CrashInjector(outcome_for(design, mechanism).result)
    return tuple(injector.interesting_times(limit=3))


def make_session(outcome, plan, with_search=False):
    config = outcome.result.config
    encrypted = outcome.result.policy.encrypts
    tree_checked = outcome.result.policy.integrity_tree
    recoverer = (
        CounterRecoverer(config.encryption) if (with_search and encrypted) else None
    )
    return RecoverySession(
        config,
        encrypted=encrypted,
        plan=plan,
        recoverer=recoverer,
        tree_checked=tree_checked,
    )


def classifier(outcome):
    validator = outcome.validator(0)
    return lambda recovered, context: validator.classify(recovered, context=context)


def schedules_for(outcome, steps=2, with_search=False):
    encrypted = outcome.result.policy.encrypts
    tree = outcome.result.policy.integrity_tree
    return nested_point_grid(
        steps,
        counter_search=with_search and encrypted,
        tree_repair=with_search and encrypted and tree,
    )


def run_session(design, mechanism, crash_ns, schedule, seed, with_search=False):
    outcome = outcome_for(design, mechanism)
    image = CrashInjector(outcome.result).crash_at(crash_ns)
    plan = RecoveryFaultPlan(schedule, seed=seed) if schedule is not None else None
    session = make_session(outcome, plan, with_search=with_search)
    return session.run(image, classifier(outcome))


class TestFaultPlan:
    def test_points_fire_exactly_once(self):
        point = RecoveryFaultPoint("txn-replay", 0, "crash")
        plan = RecoveryFaultPlan((point,), seed=1)
        assert plan.crash_after("txn-replay", 0) is point
        assert plan.crash_after("txn-replay", 0) is None  # one-shot
        assert plan.injected == 1

    def test_torn_write_length_is_seeded_and_stable(self):
        point = RecoveryFaultPoint("txn-replay", 0, "torn-write")
        first = RecoveryFaultPlan((point,), seed=9)
        second = RecoveryFaultPlan((point,), seed=9)
        assert first.tear_length(point) == second.tear_length(point)
        assert 0 < first.tear_length(point) < 64

    def test_grid_covers_phases_steps_and_kinds(self):
        grid = nested_point_grid(2, counter_search=True, tree_repair=True)
        phases = {p.phase for schedule in grid for p in schedule}
        kinds = {p.kind for schedule in grid for p in schedule}
        assert phases == set(RECOVERY_PHASES)
        assert kinds == {"crash", "torn-write"}
        assert any(len(schedule) > 1 for schedule in grid)  # double crash

    def test_torn_write_only_in_txn_replay(self):
        with pytest.raises(Exception):
            RecoveryFaultPoint("counter-search", 0, "torn-write")


class TestContextHooks:
    def test_crash_point_raises_nested_crash_at_step(self):
        plan = RecoveryFaultPlan(
            (RecoveryFaultPoint("txn-replay", 1, "crash"),), seed=1
        )
        context = RecoveryContext(plan)
        context.enter_phase("txn-replay")
        context.step()
        with pytest.raises(NestedCrash) as info:
            context.step()
        assert info.value.phase == "txn-replay"
        assert info.value.step == 1

    def test_torn_write_persists_merged_line(self):
        plan = RecoveryFaultPlan(
            (RecoveryFaultPoint("txn-replay", 0, "torn-write"),), seed=4
        )
        context = RecoveryContext(plan)
        context.enter_phase("txn-replay")
        recovered = RecoveredMemory(
            image=None, plaintext_lines={0: bytes([7]) * 64}, garbage_lines=set()
        )
        with pytest.raises(NestedCrash) as info:
            context.write_line(recovered, 0, bytes([9]) * 64)
        assert info.value.kind == "torn-write"
        tear = plan.tear_length(plan.points[0])
        torn = recovered.plaintext_lines[0]
        assert torn == bytes([9]) * tear + bytes([7]) * (64 - tear)
        assert context.persisted[0] == torn  # the tear is durable


class TestGarbageRead:
    def _memory(self):
        return RecoveredMemory(
            image=None,
            plaintext_lines={0: bytes([5]) * 64},
            garbage_lines={0},
        )

    def test_non_strict_read_returns_typed_sentinel(self):
        memory = self._memory()
        value = memory.read(0, 64, strict=False)
        assert isinstance(value, GarbageRead)
        assert isinstance(value, bytes) and value == bytes([5]) * 64
        assert memory.garbage_reads == 1

    def test_clean_read_is_plain_bytes(self):
        memory = self._memory()
        value = memory.read(64, 64, strict=False)
        assert not isinstance(value, GarbageRead)
        assert memory.garbage_reads == 0

    def test_checker_counts_garbage_reads(self):
        from repro.crash.checker import CrashConsistencyReport, CrashOutcome

        report = CrashConsistencyReport(
            design="sca",
            outcomes=[
                CrashOutcome(crash_ns=1.0, consistent=True, garbage_reads=2),
                CrashOutcome(crash_ns=2.0, consistent=True, garbage_reads=1),
            ],
        )
        assert report.garbage_reads == 3

    def test_fingerprint_covers_garbage_set(self):
        tainted = self._memory()
        clean = RecoveredMemory(
            image=None, plaintext_lines={0: bytes([5]) * 64}, garbage_lines=set()
        )
        assert tainted.fingerprint() != clean.fingerprint()


class TestErrorDigest:
    def _boom(self, message):
        raise ValueError(message)

    def test_digest_groups_by_site_not_message(self):
        digests = []
        for message in ("counter 17 bad", "counter 99 bad"):
            try:
                self._boom(message)
            except ValueError as exc:
                digests.append(error_digest(exc))
        assert digests[0]["digest"] == digests[1]["digest"]
        assert digests[0]["message"] != digests[1]["message"]
        assert digests[0]["type"] == "ValueError"
        assert digests[0]["trace"]


class TestDeterminism:
    @given(data=st.data())
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_same_seed_image_and_plan_replay_identically(self, data):
        design = data.draw(st.sampled_from(DESIGNS), label="design")
        mechanism = data.draw(st.sampled_from(MECHANISMS), label="mechanism")
        crash_ns = data.draw(
            st.sampled_from(crash_times_for(design, mechanism)), label="crash_ns"
        )
        outcome = outcome_for(design, mechanism)
        grid = schedules_for(outcome, with_search=True)
        schedule = data.draw(st.sampled_from(grid), label="schedule")
        seed = data.draw(st.integers(min_value=0, max_value=999), label="seed")
        first = run_session(
            design, mechanism, crash_ns, schedule, seed, with_search=True
        )
        second = run_session(
            design, mechanism, crash_ns, schedule, seed, with_search=True
        )
        assert first.ledger.path == second.ledger.path
        assert first.status == second.status
        assert (first.recovered is None) == (second.recovered is None)
        if first.recovered is not None:
            assert first.recovered.fingerprint() == second.recovered.fingerprint()

    def test_shadow_recovery_deterministic_under_nested_crash(self):
        from repro.sim.machine import Machine
        from repro.sim.trace import TraceBuilder
        from repro.txn.heap import MemoryLayout
        from repro.txn.shadow import ShadowTransactions, recover_shadow

        config = fast_config()
        layout = MemoryLayout.build(config, log_capacity=8)
        builder = TraceBuilder("shadow-nested")
        txns = ShadowTransactions(builder, layout.arena(0), region_bytes=4 * 64)
        txns.commit_new_version([(0, bytes([1]) * 64)])
        txns.commit_new_version([(0, bytes([2]) * 64)])
        result = Machine(config, "sca").run([builder.build()])
        injector = CrashInjector(result)
        manager = RecoveryManager(config.encryption)
        crash_ns = injector.interesting_times(limit=4)[-1]
        plan_points = (RecoveryFaultPoint("txn-replay", 0, "crash"),)

        def attempt():
            recovered = manager.recover(injector.crash_at(crash_ns))
            context = RecoveryContext(RecoveryFaultPlan(plan_points, seed=2))
            with pytest.raises(NestedCrash):
                recover_shadow(recovered, txns.region, context=context)
            # The selector read is the (only) restartable step; a retry
            # on the same durable state returns the same version.
            retry = RecoveryContext()
            return recover_shadow(recovered, txns.region, context=retry)

        assert attempt() == attempt()


class TestResumeEquivalence:
    @pytest.mark.parametrize("design", DESIGNS)
    @pytest.mark.parametrize("mechanism", MECHANISMS)
    def test_resumed_recovery_bit_identical_to_uninterrupted(
        self, design, mechanism
    ):
        outcome = outcome_for(design, mechanism)
        for crash_ns in crash_times_for(design, mechanism):
            baseline = run_session(design, mechanism, crash_ns, None, 0)
            assert baseline.status == "consistent"
            resumed_cells = 0
            for schedule in schedules_for(outcome, with_search=True):
                result = run_session(
                    design, mechanism, crash_ns, schedule, 3, with_search=True
                )
                assert result.status == "consistent"
                assert (
                    result.recovered.fingerprint()
                    == baseline.recovered.fingerprint()
                )
                resumed_cells += 1 if result.nested_injected else 0
            assert resumed_cells > 0, "no schedule fired at %.1fns" % crash_ns


class TestNeverSilent:
    @given(data=st.data())
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_nested_crash_never_silent_or_stuck_on_clean_images(self, data):
        design = data.draw(st.sampled_from(ALL_DESIGNS), label="design")
        mechanism = data.draw(st.sampled_from(MECHANISMS), label="mechanism")
        crash_ns = data.draw(
            st.sampled_from(crash_times_for(design, mechanism)), label="crash_ns"
        )
        outcome = outcome_for(design, mechanism)
        grid = schedules_for(outcome, with_search=True)
        schedule = data.draw(st.sampled_from(grid), label="schedule")
        seed = data.draw(st.integers(min_value=0, max_value=99), label="seed")
        result = run_session(
            design, mechanism, crash_ns, schedule, seed, with_search=True
        )
        # A clean power cut plus a nested crash must end consistent or
        # loudly detected — never silent, never a stuck recovery.
        assert result.status in ("consistent", "detected", "detected-tree"), (
            "design=%s mechanism=%s crash=%.1fns: %s (%s)"
            % (design, mechanism, crash_ns, result.status, result.detail)
        )

    @given(data=st.data())
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_corruption_plus_nested_crash_never_silent_under_bmt(self, data):
        design = data.draw(st.sampled_from(("fca+bmt", "sca+bmt")), label="design")
        fault = data.draw(
            st.sampled_from(("torn-counter", "bitflip-counter", "torn-data")),
            label="fault",
        )
        crash_ns = data.draw(st.sampled_from(crash_times_for(design)), label="crash")
        seed = data.draw(st.integers(min_value=0, max_value=99), label="seed")
        outcome = outcome_for(design)
        injector = CrashInjector(outcome.result)
        image, events = injector.crash_with_faults(
            crash_ns, [make_fault_model(fault)], seed=seed
        )
        grid = schedules_for(outcome, with_search=True)
        schedule = data.draw(st.sampled_from(grid), label="schedule")
        session = make_session(
            outcome, RecoveryFaultPlan(schedule, seed=seed), with_search=True
        )
        result = session.run(image, classifier(outcome))
        assert result.status != "silent", (
            "silent corruption survived the ladder: design=%s fault=%s "
            "crash=%.1fns events=%d" % (design, fault, crash_ns, len(events))
        )


NESTED_SPEC = dict(
    workloads=("array",),
    designs=("fca", "sca+bmt"),
    mechanisms=("undo",),
    faults=("none", "torn-counter"),
    crash_points=4,
    seed=7,
    operations=5,
    with_counter_recovery=True,
    nested_crash=True,
    nested_steps=2,
)


def nested_spec(**overrides):
    merged = dict(NESTED_SPEC)
    merged.update(overrides)
    return CampaignSpec(**merged)


class TestNestedCampaign:
    def test_nested_axis_changes_job_identity(self):
        plain = nested_spec(nested_crash=False).jobs()[0]
        nested = nested_spec().jobs()[0]
        from repro.crash.campaign import job_key

        assert job_key(plain) != job_key(nested)
        assert nested.document()["nested_crash"] is True

    def test_nested_steps_validated(self):
        with pytest.raises(CampaignError):
            nested_spec(nested_steps=0).jobs()

    def test_nested_campaign_recovers_and_stays_loud(self):
        report = CampaignRunner(
            nested_spec(), executor=SweepExecutor(workers=1, cache=None)
        ).run()
        assert report.silent == 0
        assert report.crashed == 0
        assert report.total(Outcome.RECOVERED_NESTED) > 0
        rendered = report.render()
        assert "nrecov" in rendered and "ndet" in rendered
        assert "recovered-after-nested-crash" in rendered
        document = report.as_dict()
        assert set(document["totals"]) == {o.value for o in Outcome}
        json.dumps(document)

    def test_nested_job_is_deterministic(self):
        job = nested_spec(designs=("sca+bmt",), faults=("torn-counter",)).jobs()[0]
        assert run_campaign_job(job) == run_campaign_job(job)

    def test_examples_carry_plan_ladder_and_error_triage(self):
        job = nested_spec(
            designs=("sca",),
            faults=("counter-corruption",),
            with_counter_recovery=False,
        ).jobs()[0]
        result = run_campaign_job(job)
        assert result["nested_schedules"] > 0
        assert result["points"] == result["crash_times"] * (
            result["nested_schedules"] + 1
        )
        for example in result["examples"]:
            assert "ladder" in example
            assert example["ladder"]["path"]
            if example["outcome"] == Outcome.CRASHED.value:
                assert set(example["error"]) >= {"type", "message", "digest"}


class TestJournalDedupe:
    def _run(self, directory, **runner_kwargs):
        executor = SweepExecutor(workers=1, cache=None)
        runner = CampaignRunner(
            nested_spec(nested_crash=False, designs=("sca",), faults=("none",)),
            executor=executor,
            journal_dir=str(directory),
            **runner_kwargs
        )
        return runner.run(), executor

    def test_duplicate_records_counted_once(self, tmp_path):
        directory = tmp_path / "campaign"
        first, _ = self._run(directory)
        journal = directory / CampaignRunner.JOURNAL_NAME
        lines = journal.read_text().splitlines()
        assert len(lines) == 1
        # A retried job (worker killed after journaling, or an
        # at-least-once workqueue redelivery) appends a second record
        # for the same key.  Resume must count the job exactly once.
        stale = json.loads(lines[0])
        stale["outcomes"] = {k: 0 for k in stale["outcomes"]}
        stale["points"] = 0
        journal.write_text(json.dumps(stale, sort_keys=True) + "\n" + lines[0] + "\n")
        resumed, executor = self._run(directory)
        assert executor.jobs_executed == 0  # still resumes, no rerun
        assert resumed.journal_superseded == 1
        assert "1 superseded record(s) deduped" in resumed.render()
        # Last record wins: the real tallies, not the stale zeros.
        assert resumed.points == first.points > 0
        assert resumed.as_dict()["results"] == first.as_dict()["results"]
        # The journal was rewritten without the superseded line.
        rewritten = journal.read_text().splitlines()
        assert len(rewritten) == 1
        assert json.loads(rewritten[0])["points"] == first.points

    def test_retry_crashed_reruns_only_crashed_jobs(self, tmp_path):
        directory = tmp_path / "campaign"
        first, _ = self._run(directory)
        journal = directory / CampaignRunner.JOURNAL_NAME
        record = json.loads(journal.read_text())
        # Forge a journaled record claiming recovery crashed somewhere.
        record["outcomes"][Outcome.CRASHED.value] = 1
        journal.write_text(json.dumps(record, sort_keys=True) + "\n")
        resumed, executor = self._run(directory)
        assert executor.jobs_executed == 0  # without the flag: resumed
        retried, executor = self._run(directory, retry_crashed=True)
        assert executor.jobs_executed == 1  # with the flag: re-run
        assert retried.as_dict()["results"] == first.as_dict()["results"]


class TestCli:
    def test_nested_crash_cli_smoke(self, tmp_path, capsys):
        from repro.bench.cli import main

        argv = [
            "campaign",
            "--workloads", "array",
            "--designs", "sca",
            "--mechanisms", "undo",
            "--faults", "none",
            "--crash-points", "3",
            "--operations", "5",
            "--nested-crash",
            "--nested-steps", "2",
            "--retry-crashed",
            "--strict",
            "--campaign-dir", str(tmp_path / "campaign"),
            "--json", str(tmp_path / "out.json"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "recovered-after-nested-crash" in out
        payload = json.loads((tmp_path / "out.json").read_text())
        assert payload["spec"]["nested_crash"] is True
        assert payload["totals"][Outcome.RECOVERED_NESTED.value] > 0
        assert payload["totals"][Outcome.SILENT.value] == 0
