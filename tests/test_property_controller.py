"""Property-based testing of the memory controller.

Hypothesis drives random operation streams (reads, plain writes,
counter-atomic writes, ccwb flushes) against the controller under each
design and checks the global invariants:

* the persist journal's final image equals the live device and
  architectural counter state,
* every read returns the latest written payload,
* crash reconstruction at any instant yields a decryptable image for
  crash-consistent designs.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import CACHE_LINE_SIZE, fast_config
from repro.core.designs import get_design
from repro.core.invariants import check_counter_atomicity
from repro.crypto.counters import CounterStore
from repro.mem.controller import MemoryController
from repro.nvm.device import NVMDevice

# An op is (kind, line_index, payload_seed):
#   kind 0 = read, 1 = plain write, 2 = counter-atomic write, 3 = ccwb.
OPS = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 9), st.integers(0, 255)),
    min_size=1,
    max_size=80,
)


def payload_for(seed: int) -> bytes:
    return bytes((seed + i) % 256 for i in range(CACHE_LINE_SIZE))


def drive(design: str, ops):
    controller = MemoryController(fast_config(), get_design(design))
    clock = 0.0
    expected = {}
    for kind, line_index, seed in ops:
        address = 0x10000 + line_index * CACHE_LINE_SIZE
        clock += 5.0
        if kind == 0:
            result = controller.read_line(address, clock)
            assert result.plaintext == expected.get(address, bytes(CACHE_LINE_SIZE))
        elif kind in (1, 2):
            payload = payload_for(seed)
            controller.write_line(address, payload, clock, counter_atomic=(kind == 2))
            expected[address] = payload
        else:
            controller.counter_cache_writeback(address, clock)
    return controller, expected


class TestJournalDeviceAgreement:
    @pytest.mark.parametrize("design", ["sca", "fca", "ideal", "co-located-cc", "no-encryption"])
    @given(ops=OPS)
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_final_journal_image_matches_device(self, design, ops):
        controller, _expected = drive(design, ops)
        data_lines, counters = controller.journal.final_image()
        for address, (payload, encrypted_with) in data_lines.items():
            stored = controller.device.read_line(address)
            assert stored.payload == payload
            assert stored.encrypted_with == encrypted_with
        for address, counter in counters.items():
            assert controller.counter_store.read(address) == counter

    @pytest.mark.parametrize("design", ["sca", "fca"])
    @given(ops=OPS)
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_reads_always_see_latest_write(self, design, ops):
        drive(design, ops)  # assertions inside


class TestCrashDecryptability:
    @given(ops=OPS, fraction=st.floats(min_value=0.0, max_value=1.2))
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_fca_images_always_in_sync(self, ops, fraction):
        """Under FCA every write pairs, so *every* reconstructed image
        satisfies Eq. 4 — not just barrier-aligned ones."""
        controller, _ = drive("fca", ops)
        horizon = max(
            (r.drain_ns for r in controller.journal.records if r.drain_ns != float("inf")),
            default=0.0,
        )
        crash_ns = horizon * fraction
        data_lines, counters = controller.journal.reconstruct(crash_ns)
        device = NVMDevice(controller.address_map, track_wear=False)
        for address, (payload, encrypted_with) in data_lines.items():
            device.persist_line(address, payload, encrypted_with)
        store = CounterStore(
            counter_region_base=controller.address_map.counter_region_base,
            memory_size_bytes=controller.address_map.memory_size_bytes,
        )
        for address, counter in counters.items():
            store.write(address, counter)
        assert check_counter_atomicity(device, store) == []

    @given(ops=OPS)
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_colocated_images_always_in_sync(self, ops):
        controller, _ = drive("co-located-cc", ops)
        horizon = max(
            (r.drain_ns for r in controller.journal.records if r.drain_ns != float("inf")),
            default=0.0,
        )
        for fraction in (0.25, 0.5, 0.75, 1.1):
            data_lines, counters = controller.journal.reconstruct(horizon * fraction)
            device = NVMDevice(controller.address_map, track_wear=False)
            for address, (payload, encrypted_with) in data_lines.items():
                device.persist_line(address, payload, encrypted_with)
            store = CounterStore(
                counter_region_base=controller.address_map.counter_region_base,
                memory_size_bytes=controller.address_map.memory_size_bytes,
            )
            for address, counter in counters.items():
                store.write(address, counter)
            assert check_counter_atomicity(device, store) == []
