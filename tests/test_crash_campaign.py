"""The crash-campaign engine: determinism, resume, triage classification."""

import json

import pytest

from repro.bench.parallel import SweepExecutor
from repro.crash.campaign import (
    CampaignJob,
    CampaignRunner,
    CampaignSpec,
    Outcome,
    job_key,
    run_campaign_job,
)
from repro.errors import CampaignError
from repro.faults.registry import DEFAULT_SUITE

SPEC = dict(
    workloads=("array",),
    designs=("sca",),
    mechanisms=("undo",),
    faults=("none", "torn-data", "dropped-adr"),
    crash_points=6,
    seed=7,
    operations=6,
)


def small_spec(**overrides):
    merged = dict(SPEC)
    merged.update(overrides)
    return CampaignSpec(**merged)


class TestJobs:
    def test_cross_product_order_is_deterministic(self):
        jobs = small_spec().jobs()
        assert len(jobs) == 3
        assert [job.fault for job in jobs] == ["none", "torn-data", "dropped-adr"]
        assert small_spec().jobs() == jobs

    def test_job_key_stable_and_seed_sensitive(self):
        job = small_spec().jobs()[0]
        assert job_key(job) == job_key(job)
        reseeded = CampaignJob(**{**job.document(), "seed": 8, "fault_params": ()})
        assert job_key(reseeded) != job_key(job)

    def test_fault_spec_mappings_accepted(self):
        spec = small_spec(faults=({"model": "dropped-adr", "budget": 2},))
        (job,) = spec.jobs()
        assert job.fault == "dropped-adr"
        assert dict(job.fault_params) == {"budget": 2}


class TestSpecValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"workloads": ("no-such-workload",)},
            {"designs": ("no-such-design",)},
            {"mechanisms": ("no-such-mechanism",)},
            {"faults": ("no-such-fault",)},
            {"faults": ({"budget": 1},)},  # missing model name
            {"crash_points": 0},
            {"workloads": ()},
        ],
    )
    def test_bad_axis_rejected_before_execution(self, overrides):
        with pytest.raises(CampaignError):
            small_spec(**overrides).jobs()


class TestDeterminism:
    def test_same_seed_same_outcome_table(self):
        first = CampaignRunner(small_spec()).run()
        second = CampaignRunner(small_spec()).run()
        assert first.as_dict() == second.as_dict()

    def test_every_crash_point_classified(self):
        report = CampaignRunner(small_spec()).run()
        for result in report.results:
            assert sum(result["outcomes"].values()) == result["points"] > 0


class TestResume:
    def test_resume_runs_only_missing_jobs(self, tmp_path):
        full_dir = tmp_path / "full"
        full = CampaignRunner(small_spec(), journal_dir=str(full_dir)).run()
        journal_lines = (
            (full_dir / CampaignRunner.JOURNAL_NAME).read_text().splitlines(True)
        )
        assert len(journal_lines) == 3
        # A campaign killed after two jobs left a two-line journal.
        partial_dir = tmp_path / "partial"
        partial_dir.mkdir()
        (partial_dir / CampaignRunner.JOURNAL_NAME).write_text(
            "".join(journal_lines[:2])
        )
        executor = SweepExecutor()
        resumed = CampaignRunner(
            small_spec(), executor=executor, journal_dir=str(partial_dir)
        ).run()
        assert executor.jobs_executed == 1
        assert resumed.resumed_jobs == 2
        assert resumed.as_dict()["results"] == full.as_dict()["results"]

    def test_malformed_journal_line_reruns_that_job(self, tmp_path):
        directory = tmp_path / "campaign"
        CampaignRunner(small_spec(), journal_dir=str(directory)).run()
        journal = directory / CampaignRunner.JOURNAL_NAME
        lines = journal.read_text().splitlines(True)
        # Simulate a mid-write kill tearing the last journal line.
        journal.write_text("".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])
        executor = SweepExecutor()
        report = CampaignRunner(
            small_spec(), executor=executor, journal_dir=str(directory)
        ).run()
        assert executor.jobs_executed == 1
        assert report.resumed_jobs == 2

    def test_torn_journal_line_is_quarantined(self, tmp_path):
        directory = tmp_path / "campaign"
        CampaignRunner(small_spec(), journal_dir=str(directory)).run()
        journal = directory / CampaignRunner.JOURNAL_NAME
        lines = journal.read_text().splitlines(True)
        torn = lines[-1][: len(lines[-1]) // 2]
        journal.write_text("".join(lines[:-1]) + torn)
        report = CampaignRunner(small_spec(), journal_dir=str(directory)).run()
        assert report.journal_quarantined == 1
        assert "1 torn line(s) quarantined" in report.render()
        assert report.as_dict()["journal_quarantined"] == 1
        # The fragment moved to the quarantine side-file and the
        # rewritten journal parses cleanly end to end.
        quarantine = directory / (CampaignRunner.JOURNAL_NAME + ".quarantine")
        assert torn.strip() in quarantine.read_text()
        import json

        for line in journal.read_text().splitlines():
            json.loads(line)

    def test_seed_change_invalidates_journal(self, tmp_path):
        directory = str(tmp_path / "campaign")
        CampaignRunner(small_spec(), journal_dir=directory).run()
        executor = SweepExecutor()
        report = CampaignRunner(
            small_spec(seed=8), executor=executor, journal_dir=directory
        ).run()
        assert report.resumed_jobs == 0
        assert executor.jobs_executed == 3


class TestClassification:
    def test_full_suite_never_crashes_undo_recovery_on_sca(self):
        report = CampaignRunner(
            small_spec(faults=tuple(DEFAULT_SUITE), crash_points=6)
        ).run()
        assert report.crashed == 0
        assert report.total(Outcome.RECOVERED) > 0

    def test_clean_power_cut_always_recovers_on_sca(self):
        result = run_campaign_job(small_spec(faults=("none",)).jobs()[0])
        assert result["outcomes"][Outcome.DETECTED.value] == 0
        assert result["outcomes"][Outcome.SILENT.value] == 0
        assert result["outcomes"][Outcome.CRASHED.value] == 0

    def test_report_renders_table_and_totals(self):
        report = CampaignRunner(small_spec()).run()
        rendered = report.render()
        assert "crash campaign" in rendered
        assert "totals:" in rendered
        assert "torn-data" in rendered
        document = report.as_dict()
        assert set(document["totals"]) == {o.value for o in Outcome}
        json.dumps(document)  # JSON-ready throughout


class TestCli:
    def test_campaign_cli_runs_and_resumes(self, tmp_path, capsys):
        from repro.bench.cli import main

        argv = [
            "campaign",
            "--workloads", "array",
            "--designs", "sca",
            "--mechanisms", "undo",
            "--faults", "none,torn-counter",
            "--crash-points", "4",
            "--operations", "6",
            "--campaign-dir", str(tmp_path / "campaign"),
            "--json", str(tmp_path / "out.json"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "crash campaign" in first
        assert "executor[" in first
        assert (tmp_path / "out.json").exists()
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "resumed: 2 job(s)" in second

    def test_campaign_cli_rejects_bad_spec(self, tmp_path, capsys):
        from repro.bench.cli import main

        assert main(["campaign", "--designs", "warp-drive"]) == 2
        assert "warp-drive" in capsys.readouterr().err
