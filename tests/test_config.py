"""Tests for repro.config: validation, derivation, Table 2 defaults."""

import dataclasses

import pytest

from repro.config import (
    CACHE_LINE_SIZE,
    KB,
    MB,
    CacheConfig,
    CoreConfig,
    CounterCacheConfig,
    EncryptionConfig,
    MemoryControllerConfig,
    NVMTimingConfig,
    SystemConfig,
    bench_config,
    config_from_mapping,
    default_config,
    fast_config,
)
from repro.errors import ConfigurationError


class TestTable2Defaults:
    def test_default_queue_geometry(self):
        config = default_config()
        assert config.controller.read_queue_entries == 32
        assert config.controller.data_write_queue_entries == 64
        assert config.controller.counter_write_queue_entries == 16

    def test_default_counter_cache(self):
        config = default_config()
        assert config.counter_cache.size_bytes == 1 * MB
        assert config.counter_cache.ways == 16

    def test_default_pcm_timing(self):
        nvm = default_config().nvm
        assert nvm.t_rcd_ns == 48.0
        assert nvm.t_cl_ns == 15.0
        assert nvm.t_cwd_ns == 13.0
        assert nvm.t_faw_ns == 50.0
        assert nvm.t_wtr_ns == 7.5
        assert nvm.t_wr_ns == 300.0

    def test_default_encryption_latency(self):
        assert default_config().encryption.latency_ns == 40.0

    def test_describe_mentions_all_major_components(self):
        text = " ".join(default_config().describe().values())
        for fragment in ("GHz", "PCM", "entries", "40 ns"):
            assert fragment in text


class TestCacheConfig:
    def test_sets_and_lines(self):
        cache = CacheConfig(size_bytes=8 * KB, ways=4, hit_latency_ns=1.0)
        assert cache.num_lines == 128
        assert cache.num_sets == 32

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=192 * 64, ways=4, hit_latency_ns=1.0)

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=0, ways=4, hit_latency_ns=1.0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=4 * KB, ways=4, hit_latency_ns=-1.0)


class TestNVMTimingConfig:
    def test_read_access_combines_rcd_and_cl(self):
        nvm = NVMTimingConfig()
        assert nvm.read_access_ns == pytest.approx(63.0)

    def test_write_access_includes_write_recovery(self):
        nvm = NVMTimingConfig()
        assert nvm.write_access_ns == pytest.approx(313.0)

    def test_latency_scales_apply(self):
        nvm = NVMTimingConfig(read_latency_scale=2.0, write_latency_scale=0.5)
        assert nvm.read_access_ns == pytest.approx(126.0)
        assert nvm.write_access_ns == pytest.approx(156.5)

    def test_burst_64B_on_64bit_bus_is_8_beats(self):
        nvm = NVMTimingConfig()
        assert nvm.burst_ns(64) == pytest.approx(8 * nvm.beat_ns)

    def test_burst_72B_on_72bit_bus_is_also_8_beats(self):
        """The co-located design's key property: the wider bus moves
        data + counter in the same number of beats (Section 3.2.1)."""
        narrow = NVMTimingConfig(bus_width_bits=64)
        wide = NVMTimingConfig(bus_width_bits=72)
        assert wide.burst_ns(72) == pytest.approx(narrow.burst_ns(64))

    def test_rejects_odd_bus_width(self):
        with pytest.raises(ConfigurationError):
            NVMTimingConfig(bus_width_bits=80)

    def test_rejects_zero_latency_scale(self):
        with pytest.raises(ConfigurationError):
            NVMTimingConfig(read_latency_scale=0.0)


class TestMemoryControllerConfig:
    def test_rejects_unknown_drain_policy(self):
        with pytest.raises(ConfigurationError):
            MemoryControllerConfig(drain_policy="random")

    def test_fifo_policy_accepted(self):
        assert MemoryControllerConfig(drain_policy="fifo").drain_policy == "fifo"


class TestEncryptionConfig:
    def test_rejects_short_key(self):
        with pytest.raises(ConfigurationError):
            EncryptionConfig(key=b"short")

    def test_rejects_unknown_cipher(self):
        with pytest.raises(ConfigurationError):
            EncryptionConfig(cipher="des")


class TestSystemConfig:
    def test_scaled_replaces_top_level(self):
        config = default_config().scaled(num_cores=4)
        assert config.num_cores == 4

    def test_with_nvm_replaces_timing(self):
        config = default_config().with_nvm(t_wr_ns=150.0)
        assert config.nvm.t_wr_ns == 150.0
        assert config.nvm.t_rcd_ns == 48.0

    def test_with_counter_cache_resizes(self):
        config = default_config().with_counter_cache(128 * KB)
        assert config.counter_cache.size_bytes == 128 * KB

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(num_cores=0)

    def test_rejects_unaligned_memory(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(memory_size_bytes=MB + 8)

    def test_fast_config_is_functional_by_default(self):
        assert fast_config().functional is True

    def test_bench_config_scales_shared_caches_with_cores(self):
        one = bench_config(1)
        eight = bench_config(8)
        assert eight.l2.size_bytes == 8 * one.l2.size_bytes
        assert eight.counter_cache.size_bytes == 8 * one.counter_cache.size_bytes


class TestConfigFromMapping:
    def test_flat_key(self):
        config = config_from_mapping({"num_cores": 2})
        assert config.num_cores == 2

    def test_dotted_key(self):
        config = config_from_mapping({"nvm.t_wr_ns": 100.0})
        assert config.nvm.t_wr_ns == 100.0

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError):
            config_from_mapping({"does_not_exist": 1})

    def test_unknown_group_rejected(self):
        with pytest.raises(ConfigurationError):
            config_from_mapping({"nope.t_wr_ns": 1.0})

    def test_unknown_nested_field_rejected(self):
        with pytest.raises(ConfigurationError):
            config_from_mapping({"nvm.bogus": 1.0})
