"""Counter-mode OTP construction tests (paper Eq. 1-4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CACHE_LINE_SIZE, EncryptionConfig
from repro.crypto.aes import AES128
from repro.crypto.otp import OTPCipher, decrypt_line, encrypt_line, make_block_cipher
from repro.errors import CryptoError

LINE = st.binary(min_size=CACHE_LINE_SIZE, max_size=CACHE_LINE_SIZE)
ADDRESSES = st.integers(min_value=0, max_value=2**40).map(lambda a: a - (a % 64))
COUNTERS = st.integers(min_value=0, max_value=2**40)


@pytest.fixture
def cipher():
    return OTPCipher(make_block_cipher(EncryptionConfig()))


class TestRoundTrip:
    @given(LINE, ADDRESSES, COUNTERS)
    @settings(max_examples=100)
    def test_decrypt_with_same_counter_recovers_plaintext(self, line, address, counter):
        cipher = OTPCipher(make_block_cipher(EncryptionConfig()))
        assert cipher.decrypt(address, counter, cipher.encrypt(address, counter, line)) == line

    @given(LINE, ADDRESSES, COUNTERS)
    @settings(max_examples=100)
    def test_decrypt_with_stale_counter_yields_garbage(self, line, address, counter):
        """Paper Eq. 4: a counter mismatch produces wrong plaintext."""
        cipher = OTPCipher(make_block_cipher(EncryptionConfig()))
        ciphertext = cipher.encrypt(address, counter + 1, line)
        assert cipher.decrypt(address, counter, ciphertext) != line

    def test_decrypt_with_wrong_address_yields_garbage(self, cipher):
        """The pad binds the line's address, preventing relocation."""
        line = bytes(range(64))
        ciphertext = cipher.encrypt(0x1000, 7, line)
        assert cipher.decrypt(0x1040, 7, ciphertext) != line


class TestPadProperties:
    def test_pad_deterministic(self, cipher):
        assert cipher.pad(0x40, 3) == cipher.pad(0x40, 3)

    def test_pad_counter_unique(self, cipher):
        pads = {cipher.pad(0x40, c) for c in range(64)}
        assert len(pads) == 64

    def test_pad_address_unique(self, cipher):
        pads = {cipher.pad(a * 64, 1) for a in range(64)}
        assert len(pads) == 64

    def test_pad_blocks_differ_within_line(self, cipher):
        """Each 16 B block of the line gets its own pad block."""
        pad = cipher.pad(0x40, 1)
        blocks = [pad[i : i + 16] for i in range(0, 64, 16)]
        assert len(set(blocks)) == 4

    def test_pad_cache_eviction_does_not_change_results(self):
        small = OTPCipher(make_block_cipher(EncryptionConfig()))
        small._pad_cache_limit = 4
        reference = small.pad(0, 1)
        for i in range(20):
            small.pad(i * 64, i)
        assert small.pad(0, 1) == reference


class TestAESBackend:
    def test_aes_cipher_round_trips(self):
        config = EncryptionConfig(cipher="aes")
        cipher = OTPCipher(make_block_cipher(config))
        line = bytes(range(64))
        assert cipher.decrypt(0x80, 5, cipher.encrypt(0x80, 5, line)) == line

    def test_aes_and_prf_pads_differ(self):
        """Different ciphers are different OTP generators, same interface."""
        line = bytes(64)
        aes = encrypt_line(EncryptionConfig(cipher="aes"), 0, 1, line)
        prf = encrypt_line(EncryptionConfig(cipher="prf"), 0, 1, line)
        assert aes != prf


class TestValidation:
    def test_rejects_wrong_plaintext_length(self, cipher):
        with pytest.raises(CryptoError):
            cipher.encrypt(0, 1, b"short")

    def test_rejects_wrong_ciphertext_length(self, cipher):
        with pytest.raises(CryptoError):
            cipher.decrypt(0, 1, b"short")

    def test_rejects_misaligned_line_size(self):
        with pytest.raises(CryptoError):
            OTPCipher(AES128(bytes(16)), line_size=50)

    def test_convenience_wrappers_round_trip(self):
        config = EncryptionConfig()
        line = bytes(i % 256 for i in range(64))
        assert decrypt_line(config, 0x40, 9, encrypt_line(config, 0x40, 9, line)) == line
