"""Tests for the persistent NVM byte store."""

import pytest

from repro.config import CACHE_LINE_SIZE, MB
from repro.errors import AddressError
from repro.nvm.address import AddressMap
from repro.nvm.device import NVMDevice, PersistedLine

LINE = bytes(range(64))


@pytest.fixture
def device():
    return NVMDevice(AddressMap(memory_size_bytes=64 * MB))


class TestPersistence:
    def test_unwritten_line_reads_zero(self, device):
        stored = device.read_line(0x40)
        assert stored.payload == bytes(64)
        assert stored.encrypted_with == 0

    def test_persist_read_round_trip(self, device):
        device.persist_line(0x40, LINE, encrypted_with=7)
        stored = device.read_line(0x40)
        assert stored.payload == LINE
        assert stored.encrypted_with == 7

    def test_sub_line_address_maps_to_line(self, device):
        device.persist_line(0x40, LINE)
        assert device.read_line(0x77).payload == LINE

    def test_overwrite_replaces(self, device):
        device.persist_line(0x40, LINE, encrypted_with=1)
        device.persist_line(0x40, bytes(64), encrypted_with=2)
        assert device.read_line(0x40).encrypted_with == 2

    def test_none_payload_in_timing_mode_stores_zeroes(self, device):
        device.persist_line(0x40, None, encrypted_with=3)
        stored = device.read_line(0x40)
        assert stored.payload == bytes(64)
        assert stored.encrypted_with == 3

    def test_out_of_range_rejected(self, device):
        with pytest.raises(AddressError):
            device.persist_line(64 * MB, LINE)
        with pytest.raises(AddressError):
            device.read_line(-64)

    def test_persisted_line_length_validated(self):
        with pytest.raises(AddressError):
            PersistedLine(payload=b"short", encrypted_with=0)


class TestSnapshotting:
    def test_snapshot_restore(self, device):
        device.persist_line(0x40, LINE, encrypted_with=5)
        snapshot = device.snapshot()
        device.persist_line(0x40, bytes(64), encrypted_with=6)
        device.restore(snapshot)
        assert device.read_line(0x40).encrypted_with == 5

    def test_touched_lines(self, device):
        device.persist_line(0x100, LINE)
        device.persist_line(0x40, LINE)
        assert list(device.touched_lines()) == [0x40, 0x100]

    def test_footprint(self, device):
        device.persist_line(0, LINE)
        device.persist_line(0x40, LINE)
        device.persist_line(0x40, LINE)  # rewrite, same line
        assert device.footprint_bytes == 128


class TestWearIntegration:
    def test_wear_tracks_writes(self, device):
        device.persist_line(0x40, LINE)
        device.persist_line(0x40, LINE)
        assert device.wear.writes_to(0x40) == 2

    def test_wear_disabled(self):
        device = NVMDevice(AddressMap(memory_size_bytes=64 * MB), track_wear=False)
        device.persist_line(0x40, LINE)
        assert device.wear is None
