"""Tests for the exception hierarchy and stats datatypes."""

import pytest

from repro import errors
from repro.config import fast_config
from repro.errors import (
    ConfigurationError,
    CryptoError,
    DecryptionFailure,
    ReproError,
    SimulationError,
)
from repro.sim.machine import Machine
from repro.sim.stats import CoreStats
from repro.sim.trace import TraceBuilder


class TestHierarchy:
    def test_every_library_error_derives_from_repro_error(self):
        exception_types = [
            getattr(errors, name)
            for name in dir(errors)
            if isinstance(getattr(errors, name), type)
            and issubclass(getattr(errors, name), Exception)
        ]
        for exc_type in exception_types:
            assert issubclass(exc_type, ReproError) or exc_type is ReproError

    def test_decryption_failure_carries_address(self):
        failure = DecryptionFailure(0x1040)
        assert failure.address == 0x1040
        assert "0x1040" in str(failure)
        assert isinstance(failure, CryptoError)

    def test_decryption_failure_custom_message(self):
        failure = DecryptionFailure(0x40, "custom text")
        assert str(failure) == "custom text"

    def test_catching_base_class_catches_all(self):
        with pytest.raises(ReproError):
            raise ConfigurationError("x")
        with pytest.raises(ReproError):
            raise SimulationError("y")


class TestCoreStats:
    def _run(self):
        builder = TraceBuilder("t")
        builder.txn_begin()
        builder.store_u64(0x1000, 1, counter_atomic=True)
        builder.store_u64(0x1040, 2)
        builder.load(0x1000, 8)
        builder.clwb(0x1000)
        builder.ccwb(0x1000)
        builder.persist_barrier()
        builder.txn_end()
        return Machine(fast_config(), "sca").run([builder.build()])

    def test_op_counters(self):
        stats = self._run().stats.per_core[0]
        assert stats.stores == 2
        assert stats.ca_stores == 1
        assert stats.loads == 1
        assert stats.clwbs == 1
        assert stats.ccwbs == 1
        assert stats.fences == 1
        assert stats.transactions == 1
        assert stats.ops_executed == 8

    def test_as_dict_round_trip(self):
        stats = self._run().stats.per_core[0]
        data = stats.as_dict()
        assert data["stores"] == 2
        assert data["transactions"] == 1
        assert data["finish_ns"] > 0

    def test_machine_summary(self):
        result = self._run()
        summary = result.stats.summary()
        assert summary["design"] == "sca"
        assert summary["transactions"] == 1
        assert summary["throughput_txn_per_s"] > 0


class TestExperimentRegistry:
    def test_get_experiment_by_name(self):
        from repro.bench.experiments import get_experiment

        assert get_experiment("fig12").name == "fig12"

    def test_unknown_experiment_rejected(self):
        from repro.bench.experiments import get_experiment

        with pytest.raises(ConfigurationError):
            get_experiment("fig99")

    def test_bad_scale_rejected(self):
        from repro.bench.experiments import Table2Config

        with pytest.raises(ConfigurationError):
            Table2Config().run(scale="enormous")

    def test_experiment_ids_match_bench_files(self):
        """Every registered experiment has a bench module (deliverable
        d: one bench per table/figure)."""
        import os

        from repro.bench.experiments import EXPERIMENTS

        bench_dir = os.path.join(os.path.dirname(__file__), "..", "benchmarks")
        files = os.listdir(bench_dir)
        for name in EXPERIMENTS:
            matches = [f for f in files if name in f]
            assert matches, "no bench module for %s" % name
