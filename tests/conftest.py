"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import (
    CacheConfig,
    CounterCacheConfig,
    EncryptionConfig,
    SystemConfig,
    fast_config,
)
from repro.core.designs import get_design
from repro.crypto.otp import OTPCipher, make_block_cipher
from repro.mem.controller import MemoryController
from repro.sim.machine import Machine
from repro.sim.trace import TraceBuilder

KB = 1024
MB = 1024 * KB


@pytest.fixture
def config() -> SystemConfig:
    """Small functional configuration for unit tests."""
    return fast_config()

@pytest.fixture
def timing_config() -> SystemConfig:
    """Timing-only configuration (no byte movement)."""
    return fast_config(functional=False)


@pytest.fixture
def controller_factory(config):
    """Build a memory controller for a named design."""

    def factory(design_name: str, cfg: SystemConfig = None) -> MemoryController:
        return MemoryController(cfg or config, get_design(design_name))

    return factory


@pytest.fixture
def machine_factory(config):
    """Build a machine for a named design."""

    def factory(design_name: str, cfg: SystemConfig = None) -> Machine:
        return Machine(cfg or config, design_name)

    return factory


@pytest.fixture
def otp_cipher() -> OTPCipher:
    return OTPCipher(make_block_cipher(EncryptionConfig()))


@pytest.fixture
def builder() -> TraceBuilder:
    return TraceBuilder("test")
