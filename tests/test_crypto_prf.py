"""Tests for the SplitMix-based simulation PRF."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.prf import SplitMixPRF
from repro.errors import CryptoError

_KEY = b"0123456789abcdef"


class TestBasics:
    def test_deterministic(self):
        prf = SplitMixPRF(_KEY)
        block = bytes(range(16))
        assert prf.encrypt_block(block) == prf.encrypt_block(block)

    def test_key_sensitivity(self):
        block = bytes(16)
        assert (
            SplitMixPRF(b"A" * 16).encrypt_block(block)
            != SplitMixPRF(b"B" * 16).encrypt_block(block)
        )

    def test_output_length(self):
        assert len(SplitMixPRF(_KEY).encrypt_block(bytes(16))) == 16

    def test_rejects_bad_key(self):
        with pytest.raises(CryptoError):
            SplitMixPRF(b"short")

    def test_rejects_bad_block(self):
        with pytest.raises(CryptoError):
            SplitMixPRF(_KEY).encrypt_block(b"short")


class TestStatisticalProperties:
    @given(st.binary(min_size=16, max_size=16))
    @settings(max_examples=100)
    def test_input_sensitivity(self, block):
        """Any block maps to an output different from a perturbed block.

        This is the property counter-atomicity relies on: a stale
        counter (different input) must yield an unrelated pad.
        """
        prf = SplitMixPRF(_KEY)
        perturbed = bytes([block[0] ^ 1]) + block[1:]
        assert prf.encrypt_block(block) != prf.encrypt_block(perturbed)

    def test_low_entropy_inputs_spread(self):
        """Sequential counters (the common input) yield distinct pads."""
        prf = SplitMixPRF(_KEY)
        outputs = {
            prf.encrypt_block(i.to_bytes(16, "little")) for i in range(1000)
        }
        assert len(outputs) == 1000

    def test_bit_balance(self):
        """Outputs over sequential inputs are roughly half ones."""
        prf = SplitMixPRF(_KEY)
        ones = 0
        total = 0
        for i in range(256):
            out = prf.encrypt_block(i.to_bytes(16, "little"))
            ones += sum(bin(b).count("1") for b in out)
            total += 128
        assert 0.45 < ones / total < 0.55
