"""Tests for post-crash decryption and the recovered-memory view."""

import pytest

from repro.config import fast_config
from repro.crash.injector import CrashInjector
from repro.crash.recovery import RecoveryManager
from repro.errors import DecryptionFailure
from repro.sim.machine import Machine
from repro.sim.trace import TraceBuilder


def run_trace(design, build):
    builder = TraceBuilder("t")
    build(builder)
    return Machine(fast_config(), design).run([builder.build()])


def flushed_writes(builder):
    builder.store_u64(0x1000, 0xAB)
    builder.clwb(0x1000)
    builder.ccwb(0x1000)
    builder.persist_barrier()


class TestDecryption:
    def test_flushed_data_recovers(self):
        result = run_trace("sca", flushed_writes)
        injector = CrashInjector(result)
        recovered = RecoveryManager(result.config.encryption).recover(
            injector.crash_at(result.stats.runtime_ns + 1e6)
        )
        assert recovered.read_u64(0x1000) == 0xAB
        assert not recovered.garbage_lines

    def test_unsafe_design_leaves_garbage(self):
        """Without ccwb support or pairing, the counter never persists:
        the data line in NVM cannot be decrypted (Figure 3(a))."""
        result = run_trace("unsafe", flushed_writes)
        injector = CrashInjector(result)
        recovered = RecoveryManager(result.config.encryption).recover(
            injector.crash_at(result.stats.runtime_ns + 1e6)
        )
        assert recovered.is_garbage(0x1000)
        with pytest.raises(DecryptionFailure):
            recovered.read_u64(0x1000)

    def test_non_strict_read_returns_garbage_bytes(self):
        result = run_trace("unsafe", flushed_writes)
        injector = CrashInjector(result)
        recovered = RecoveryManager(result.config.encryption).recover(
            injector.crash_at(result.stats.runtime_ns + 1e6)
        )
        garbage = recovered.read(0x1000, 8, strict=False)
        assert garbage != (0xAB).to_bytes(8, "little")

    def test_unencrypted_recovery(self):
        result = run_trace("no-encryption", flushed_writes)
        injector = CrashInjector(result)
        recovered = RecoveryManager(result.config.encryption).recover(
            injector.crash_at(result.stats.runtime_ns + 1e6), encrypted=False
        )
        assert recovered.read_u64(0x1000) == 0xAB

    def test_untouched_lines_read_zero(self):
        result = run_trace("sca", flushed_writes)
        injector = CrashInjector(result)
        recovered = RecoveryManager(result.config.encryption).recover(
            injector.crash_at(result.stats.runtime_ns + 1e6)
        )
        assert recovered.read_u64(0x7000) == 0

    def test_multi_line_read_spans(self):
        def build(builder):
            builder.store(0x1000, bytes(range(64)))
            builder.store(0x1040, bytes(range(64, 128)))
            builder.clwb(0x1000)
            builder.clwb(0x1040)
            builder.ccwb(0x1000)
            builder.persist_barrier()

        result = run_trace("sca", build)
        injector = CrashInjector(result)
        recovered = RecoveryManager(result.config.encryption).recover(
            injector.crash_at(result.stats.runtime_ns + 1e6)
        )
        assert recovered.read(0x1030, 32) == bytes(range(48, 80))

    def test_violations_listing(self):
        result = run_trace("unsafe", flushed_writes)
        injector = CrashInjector(result)
        manager = RecoveryManager(result.config.encryption)
        image = injector.crash_at(result.stats.runtime_ns + 1e6)
        violations = manager.violations(image)
        assert any(v.address == 0x1000 for v in violations)


class TestCrashTiming:
    def test_data_absent_before_clwb_acceptance(self):
        """Stores alone are volatile: a crash before the clwb's queue
        acceptance loses the line entirely (cache contents vanish)."""
        result = run_trace("sca", flushed_writes)
        injector = CrashInjector(result)
        image = injector.crash_at(1.0)  # before any writeback
        recovered = RecoveryManager(result.config.encryption).recover(image)
        assert recovered.read_u64(0x1000) == 0
