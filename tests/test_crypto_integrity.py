"""Tests for per-line integrity tags."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CACHE_LINE_SIZE, EncryptionConfig
from repro.crypto.integrity import TAG_BYTES, IntegrityEngine, TaggedLine, derive_tag_key
from repro.errors import CryptoError

LINE = bytes(i % 256 for i in range(CACHE_LINE_SIZE))


@pytest.fixture
def engine():
    return IntegrityEngine(EncryptionConfig())


class TestTags:
    def test_tag_length(self, engine):
        assert len(engine.tag(0x40, 1, LINE)) == TAG_BYTES

    def test_deterministic(self, engine):
        assert engine.tag(0x40, 1, LINE) == engine.tag(0x40, 1, LINE)

    def test_verify_accepts_true_inputs(self, engine):
        tag = engine.tag(0x40, 9, LINE)
        assert engine.verify(0x40, 9, LINE, tag)

    def test_verify_rejects_wrong_counter(self, engine):
        tag = engine.tag(0x40, 9, LINE)
        assert not engine.verify(0x40, 8, LINE, tag)
        assert not engine.verify(0x40, 10, LINE, tag)

    def test_verify_rejects_wrong_address(self, engine):
        tag = engine.tag(0x40, 9, LINE)
        assert not engine.verify(0x80, 9, LINE, tag)

    def test_verify_rejects_modified_ciphertext(self, engine):
        tag = engine.tag(0x40, 9, LINE)
        tampered = bytes([LINE[0] ^ 1]) + LINE[1:]
        assert not engine.verify(0x40, 9, tampered, tag)

    def test_last_byte_tamper_detected(self, engine):
        """The chaining absorbs every block, including the last."""
        tag = engine.tag(0x40, 9, LINE)
        tampered = LINE[:-1] + bytes([LINE[-1] ^ 0x80])
        assert not engine.verify(0x40, 9, tampered, tag)

    def test_wrong_line_size_rejected(self, engine):
        with pytest.raises(CryptoError):
            engine.tag(0x40, 1, b"short")

    def test_wrong_tag_size_rejected(self, engine):
        with pytest.raises(CryptoError):
            engine.verify(0x40, 1, LINE, b"tiny")

    def test_tag_key_independent_of_data_key_usage(self):
        config_a = EncryptionConfig(key=b"A" * 16)
        config_b = EncryptionConfig(key=b"B" * 16)
        assert derive_tag_key(config_a) != derive_tag_key(config_b)
        tag_a = IntegrityEngine(config_a).tag(0x40, 1, LINE)
        tag_b = IntegrityEngine(config_b).tag(0x40, 1, LINE)
        assert tag_a != tag_b


class TestTaggedLine:
    def test_verify_with(self, engine):
        tag = engine.tag(0x40, 5, LINE)
        line = TaggedLine(address=0x40, ciphertext=LINE, tag=tag)
        assert line.verify_with(engine, 5)
        assert not line.verify_with(engine, 6)


class TestProperties:
    @given(
        st.integers(0, 2**30).map(lambda a: a * 64),
        st.integers(1, 2**32),
        st.integers(1, 63),
    )
    @settings(max_examples=100)
    def test_no_nearby_counter_collisions(self, address, counter, offset):
        """A tag never verifies under a nearby wrong counter — the
        property the Osiris-style search relies on."""
        engine = IntegrityEngine(EncryptionConfig())
        tag = engine.tag(address, counter, LINE)
        assert engine.verify(address, counter, LINE, tag)
        assert not engine.verify(address, counter + offset, LINE, tag)
