"""Property-based durability testing of the KV service across designs.

For every design in the axis registry (including the ``+bmt`` tree
variants), a power failure at any instant of generated traffic must
leave each tenant recoverable to a *linearizable prefix of its
acknowledged operations*: the recovered state equals some prefix of the
tenant's committed transactions, that prefix covers every transaction
whose commit barrier completed (acknowledged) before the crash, no
tenant's writes land in another tenant's arena, and any
acknowledged-write loss is surfaced as a detected/silent failure —
never reported as success.  ``unsafe`` (separate counters, no pairing)
is the registered counterexample: it is allowed to lose acknowledged
writes, but the loss must still be *reported*.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.designs import get_design, list_designs
from repro.service import ServiceJob, TrafficSpec, run_service_job

ALL_DESIGNS = list_designs(include_unsafe=True, include_integrity=True)

#: Small but split-capable traffic: two tenants, tight keyspace.
def make_spec(seed, mode):
    return TrafficSpec(
        tenants=2,
        operations=24,
        seed=seed,
        mode=mode,
        keyspace=16,
        scan_span=4,
    )


def assert_durability_contract(document, design):
    """The PR's core property, shared by both test entry points."""
    policy = get_design(design)
    totals = document["totals"]
    crash = document["crash"]
    assert document["status"] != "crashed", crash["detail"]
    if policy.crash_consistent:
        # Linearizable-prefix recovery with no acknowledged-write loss
        # and nothing silently wrong.
        assert document["status"] in ("consistent", "detected-tree"), crash
        assert document["consistent"] is True
        assert totals["acked_lost"] == 0
        assert crash["silent"] == []
        for tenant in document["tenants"]:
            durability = tenant["durability"]
            assert durability["consistent"] is True
            prefix = durability["recovered_prefix"]
            assert prefix is not None and prefix >= 0
    else:
        # The unsafe design may lose acknowledged writes, but the run
        # must never claim success while doing so.
        if totals["acked_lost"] > 0:
            assert document["consistent"] is False
            assert document["status"] in ("detected", "silent")


@pytest.mark.parametrize("design", ALL_DESIGNS)
def test_every_design_mid_traffic_crash(design):
    """Fixed-seed sweep: every registry design, one mid-traffic crash."""
    document = run_service_job(
        ServiceJob(design=design, traffic=make_spec(seed=77, mode="open"))
    )
    assert_durability_contract(document, design)


@given(data=st.data())
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_any_crash_point_recovers_acknowledged_prefix(data):
    """Randomized: any design, any crash instant, any load shape."""
    design = data.draw(st.sampled_from(ALL_DESIGNS), label="design")
    seed = data.draw(st.integers(min_value=0, max_value=999), label="seed")
    mode = data.draw(st.sampled_from(("open", "closed")), label="mode")
    fraction = data.draw(
        st.floats(min_value=0.05, max_value=0.95), label="crash_fraction"
    )
    document = run_service_job(
        ServiceJob(
            design=design,
            traffic=make_spec(seed=seed, mode=mode),
            crash_fraction=fraction,
        )
    )
    assert_durability_contract(document, design)


@given(seed=st.integers(min_value=0, max_value=999))
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_acked_ops_never_exceed_recovered_prefix_requirement(seed):
    """Cross-check the triage arithmetic itself on SCA: every tenant's
    recovered prefix must cover its acknowledged transactions, and the
    unacked-recovered count stays within the in-flight window."""
    document = run_service_job(
        ServiceJob(design="sca", traffic=make_spec(seed=seed, mode="open"))
    )
    totals = document["totals"]
    assert totals["acked_lost"] == 0
    assert totals["acked"] + totals["unacked_recovered"] <= totals["ops"]
    for tenant in document["tenants"]:
        durability = tenant["durability"]
        assert durability["unacked_recovered"] >= 0
        assert tenant["acked"] <= tenant["ops"]
