"""KV engine unit tests: tenant namespaces, splits, validation, SLO math."""

import pytest

from repro.config import fast_config
from repro.errors import ServiceError
from repro.service import (
    LatencyHistogram,
    ServiceWorkload,
    TrafficSpec,
    attribute_latencies,
    build_tenant_arenas,
    generate_operations,
    summarize_tenants,
)
from repro.service.kv import TOMBSTONE_KEY
from repro.sim.machine import Machine


@pytest.fixture()
def workload():
    return ServiceWorkload(fast_config(), tenants=2, initial_buckets=8)


@pytest.fixture()
def store(workload):
    return workload.stores[0]


class TestTenantKV:
    def test_put_get_roundtrip(self, store):
        store.put(1, 100)
        store.put(2, 200)
        assert store.get(1) == 100
        assert store.get(2) == 200
        assert store.get(3) is None

    def test_overwrite_keeps_count(self, store):
        store.put(5, 1)
        store.put(5, 2)
        assert store.get(5) == 2
        assert store.count == 1

    def test_delete_tombstones_and_reinsert(self, store):
        store.put(7, 70)
        assert store.delete(7) is True
        assert store.get(7) is None
        assert store.delete(7) is False
        store.put(7, 71)
        assert store.get(7) == 71

    def test_scan_is_sorted_and_bounded(self, store):
        for key in (9, 3, 12, 5):
            store.put(key, key * 10)
        store.delete(5)
        assert store.scan(3, 12) == [(3, 30), (9, 90), (12, 120)]
        assert store.scan(100, 200) == []

    def test_invalid_keys_rejected(self, store):
        with pytest.raises(ServiceError):
            store.put(0, 1)
        with pytest.raises(ServiceError):
            store.put(TOMBSTONE_KEY, 1)

    def test_split_grows_table_and_preserves_contents(self, store):
        pairs = {key: key * 7 for key in range(1, 60)}
        for key, value in pairs.items():
            store.put(key, value)
        assert store.splits >= 1
        assert store.nbuckets > 8
        assert store.count == len(pairs)
        for key, value in pairs.items():
            assert store.get(key) == value

    def test_probe_only_engine_matches_indexed_engine(self):
        ops = [("put", k, k * 3) for k in range(1, 30)]
        ops += [("put", k, k * 5) for k in range(1, 30, 2)]
        ops += [("del", k, 0) for k in range(1, 30, 3)]

        def run(use_index):
            workload = ServiceWorkload(
                fast_config(), tenants=1, use_index=use_index
            )
            kv = workload.stores[0]
            for kind, key, value in ops:
                if kind == "put":
                    kv.put(key, value)
                else:
                    kv.delete(key)
            return kv.scan(1, 64)

        assert run(True) == run(False)

    def test_tenants_use_disjoint_arenas(self, workload):
        arenas = workload.arenas
        spans = sorted((a.heap.base, a.heap.limit) for a in arenas)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start

    def test_build_tenant_arenas_rejects_overcommit(self):
        with pytest.raises(ServiceError):
            build_tenant_arenas(fast_config(), tenants=100000)


class TestServiceWorkload:
    def test_execute_commits_one_span_per_operation(self, workload):
        spec = TrafficSpec(tenants=2, operations=40, seed=3, keyspace=16)
        operations = generate_operations(spec)
        workload.execute(operations)
        run = workload.build_run(operations)
        spans = run.op_commit_spans()
        assert set(spans) == {op.index for op in operations}
        for first, last in spans.values():
            assert 0 <= first <= last < len(run.commit_order)

    def test_simulated_trace_matches_commit_order(self, workload):
        spec = TrafficSpec(tenants=2, operations=30, seed=4, keyspace=16)
        operations = generate_operations(spec)
        workload.execute(operations)
        run = workload.build_run(operations)
        result = Machine(workload.config, "sca").run([run.trace])
        assert len(result.txn_end_times[0]) == len(run.commit_order)


class TestLatencyHistogram:
    def test_percentiles_bracket_samples(self):
        histogram = LatencyHistogram()
        for value in range(1, 1001):
            histogram.record(float(value))
        assert histogram.count == 1000
        p50 = histogram.percentile(0.50)
        assert 475 <= p50 <= 550
        assert histogram.percentile(0.999) <= histogram.max_ns == 1000.0
        assert histogram.percentile(1.0) == 1000.0

    def test_merge_matches_single_stream(self):
        left, right, both = (
            LatencyHistogram(),
            LatencyHistogram(),
            LatencyHistogram(),
        )
        for value in range(1, 500):
            (left if value % 2 else right).record(float(value))
            both.record(float(value))
        left.merge(right)
        assert left.as_dict() == both.as_dict()

    def test_rejects_negative_and_bad_quantiles(self):
        histogram = LatencyHistogram()
        with pytest.raises(ServiceError):
            histogram.record(-1.0)
        with pytest.raises(ServiceError):
            histogram.percentile(0.0)
        assert histogram.percentile(0.5) == 0.0


class TestLatencyAttribution:
    def _timings(self, spec):
        config = fast_config()
        workload = ServiceWorkload(config, spec.tenants)
        operations = generate_operations(spec)
        workload.execute(operations)
        run = workload.build_run(operations)
        result = Machine(config, "sca").run([run.trace])
        return run, attribute_latencies(run, result.txn_end_times[0], spec)

    def test_open_loop_latency_is_queue_plus_service(self):
        spec = TrafficSpec(tenants=2, operations=40, seed=5, keyspace=16)
        _run, timings = self._timings(spec)
        assert len(timings) == spec.operations
        for timing in timings:
            assert timing.service_ns > 0
            assert timing.start_ns >= timing.arrival_ns
            assert timing.latency_ns == pytest.approx(
                timing.queue_ns + timing.service_ns
            )

    def test_acks_are_monotone_on_the_trace_clock(self):
        spec = TrafficSpec(tenants=2, operations=40, seed=5, keyspace=16)
        _run, timings = self._timings(spec)
        acks = [t.ack_ns for t in timings]
        assert acks == sorted(acks)

    def test_closed_loop_clients_respect_think_time(self):
        spec = TrafficSpec(
            tenants=2,
            operations=40,
            seed=6,
            keyspace=16,
            mode="closed",
            clients=3,
            think_ns=500.0,
        )
        _run, timings = self._timings(spec)
        last_completion = {}
        for timing in timings:
            previous = last_completion.get(timing.client)
            if previous is not None:
                assert timing.arrival_ns >= previous + spec.think_ns
            last_completion[timing.client] = timing.completion_ns

    def test_crash_cutoff_limits_latency_samples(self):
        spec = TrafficSpec(tenants=2, operations=40, seed=7, keyspace=16)
        _run, timings = self._timings(spec)
        cutoff = timings[len(timings) // 2].ack_ns
        slos = summarize_tenants(spec, timings, crash_ns=cutoff)
        acked = sum(slo.acked for slo in slos)
        assert acked == sum(1 for t in timings if t.ack_ns <= cutoff)
        assert sum(slo.ops for slo in slos) == spec.operations
        assert sum(slo.histogram.count for slo in slos) == acked

    def test_length_mismatch_is_loud(self):
        spec = TrafficSpec(tenants=2, operations=10, seed=8, keyspace=16)
        run, timings = self._timings(spec)
        assert timings
        with pytest.raises(ServiceError):
            attribute_latencies(run, [0.0], spec)
