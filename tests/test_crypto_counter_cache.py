"""Tests for the on-chip counter cache (volatile, write-back, LRU)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CACHE_LINE_SIZE, CounterCacheConfig
from repro.crypto.counter_cache import GROUP_SPAN, CounterCache

SMALL = CounterCacheConfig(size_bytes=4 * 1024, ways=4)
EIGHT = tuple(range(8))


@pytest.fixture
def cache():
    return CounterCache(SMALL)


class TestLookups:
    def test_miss_on_empty_cache(self, cache):
        assert cache.lookup_for_read(0x40) is None
        assert cache.stats.read_misses == 1

    def test_hit_after_fill(self, cache):
        cache.fill(0x40, EIGHT)
        assert cache.lookup_for_read(0x40) == 1  # slot 1 of the group
        assert cache.stats.read_hits == 1

    def test_fill_covers_whole_group(self, cache):
        cache.fill(0, EIGHT)
        for slot in range(8):
            assert cache.lookup_for_read(slot * CACHE_LINE_SIZE) == slot

    def test_write_lookup_counts_separately(self, cache):
        cache.fill(0, EIGHT)
        cache.lookup_for_write(0)
        assert cache.stats.write_hits == 1
        cache.lookup_for_write(GROUP_SPAN * 50)
        assert cache.stats.write_misses == 1


class TestUpdates:
    def test_update_requires_resident_line(self, cache):
        assert cache.update(0x40, 99) is False
        cache.fill(0x40, EIGHT)
        assert cache.update(0x40, 99) is True
        assert cache.lookup_for_read(0x40) == 99

    def test_update_marks_dirty(self, cache):
        cache.fill(0, EIGHT)
        assert not cache.is_dirty(0)
        cache.update(0, 42)
        assert cache.is_dirty(0)


class TestWriteback:
    def test_writeback_clean_line_is_noop(self, cache):
        cache.fill(0, EIGHT)
        assert cache.writeback_line(0) is None

    def test_writeback_dirty_line_returns_counters(self, cache):
        cache.fill(0, EIGHT)
        cache.update(0x40, 77)
        group_base, counters = cache.writeback_line(0x40)
        assert group_base == 0
        assert counters[1] == 77

    def test_writeback_cleans_without_invalidating(self, cache):
        cache.fill(0, EIGHT)
        cache.update(0, 5)
        cache.writeback_line(0)
        assert not cache.is_dirty(0)
        assert cache.contains(0)

    def test_second_writeback_is_noop(self, cache):
        cache.fill(0, EIGHT)
        cache.update(0, 5)
        assert cache.writeback_line(0) is not None
        assert cache.writeback_line(0) is None


class TestEviction:
    def _group(self, index: int) -> int:
        return index * GROUP_SPAN

    def test_lru_eviction_order(self, cache):
        # Fill one set beyond its ways by using addresses that collide.
        stride = cache.num_sets * GROUP_SPAN
        for way in range(cache.ways):
            cache.fill(way * stride, EIGHT)
        cache.lookup_for_read(0)  # make way 0 most-recent
        victim = cache.fill(cache.ways * stride, EIGHT)
        assert victim is None  # victim (way 1) was clean
        assert cache.contains(0)
        assert not cache.contains(stride)

    def test_dirty_eviction_returns_payload(self, cache):
        stride = cache.num_sets * GROUP_SPAN
        cache.fill(0, EIGHT)
        cache.update(0, 123)
        for way in range(1, cache.ways):
            cache.fill(way * stride, EIGHT)
        victim = cache.fill(cache.ways * stride, EIGHT)
        assert victim is not None
        group_base, counters = victim
        assert group_base == 0
        assert counters[0] == 123
        assert cache.stats.dirty_evictions == 1

    def test_refill_resident_line_does_not_evict(self, cache):
        cache.fill(0, EIGHT)
        assert cache.fill(0, EIGHT) is None
        assert cache.occupancy() == 1


class TestVolatility:
    def test_invalidate_all_drops_everything(self, cache):
        cache.fill(0, EIGHT)
        cache.fill(GROUP_SPAN, EIGHT)
        cache.invalidate_all()
        assert cache.occupancy() == 0
        assert not cache.contains(0)

    def test_dirty_lines_enumerates_only_dirty(self, cache):
        cache.fill(0, EIGHT)
        cache.fill(GROUP_SPAN, EIGHT)
        cache.update(GROUP_SPAN, 9)
        dirty = cache.dirty_lines()
        assert len(dirty) == 1
        assert dirty[0][0] == GROUP_SPAN


class TestProperties:
    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, groups):
        cache = CounterCache(SMALL)
        for group in groups:
            cache.fill(group * GROUP_SPAN, EIGHT)
        assert cache.occupancy() <= cache.num_sets * cache.ways

    @given(st.lists(st.tuples(st.integers(0, 60), st.integers(1, 1000)), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_latest_update_wins(self, updates):
        """The cache always returns the most recent counter written."""
        cache = CounterCache(CounterCacheConfig(size_bytes=64 * 1024, ways=16))
        latest = {}
        for group, counter in updates:
            address = group * GROUP_SPAN
            if not cache.contains(address):
                cache.fill(address, EIGHT)
            cache.update(address, counter)
            latest[address] = counter
        for address, expected in latest.items():
            if cache.contains(address):
                assert cache.lookup_for_read(address) == expected
