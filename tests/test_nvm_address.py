"""Tests for the data/counter address map."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CACHE_LINE_SIZE, MB
from repro.errors import AddressError
from repro.nvm.address import AddressMap

MAP = AddressMap(memory_size_bytes=64 * MB, num_banks=8)


class TestRegions:
    def test_counter_region_is_line_aligned(self):
        assert MAP.counter_region_base % CACHE_LINE_SIZE == 0

    def test_data_region_is_roughly_eight_ninths(self):
        ratio = MAP.data_region_bytes / MAP.memory_size_bytes
        assert abs(ratio - 8 / 9) < 0.001

    def test_counter_region_large_enough_for_all_data_lines(self):
        needed = (MAP.data_region_bytes // CACHE_LINE_SIZE) * 8
        assert MAP.counter_region_bytes >= needed

    def test_classification(self):
        assert MAP.is_data_address(0)
        assert MAP.is_data_address(MAP.counter_region_base - 1)
        assert MAP.is_counter_address(MAP.counter_region_base)
        assert not MAP.is_data_address(MAP.memory_size_bytes)

    def test_check_data_address_raises(self):
        with pytest.raises(AddressError):
            MAP.check_data_address(MAP.counter_region_base)


class TestLineArithmetic:
    def test_line_base(self):
        assert AddressMap.line_base(0x47) == 0x40

    def test_bank_interleaving(self):
        banks = [MAP.bank_of(i * CACHE_LINE_SIZE) for i in range(16)]
        assert banks == list(range(8)) * 2

    def test_row_of_same_for_consecutive_stripe(self):
        """Eight consecutive lines stripe across banks within one row."""
        rows = {MAP.row_of(i * CACHE_LINE_SIZE) for i in range(8)}
        assert len(rows) == 1

    def test_row_changes_after_row_span(self):
        span = 8 * 64 * CACHE_LINE_SIZE  # banks * lines_per_row * line
        assert MAP.row_of(0) != MAP.row_of(span)


class TestCounterMapping:
    def test_counter_address_in_counter_region(self):
        assert MAP.is_counter_address(MAP.counter_address_of(0))

    def test_counter_addresses_dense(self):
        first = MAP.counter_address_of(0)
        second = MAP.counter_address_of(CACHE_LINE_SIZE)
        assert second - first == 8

    def test_counter_line_covers_eight_data_lines(self):
        lines = {
            MAP.counter_line_address_of(i * CACHE_LINE_SIZE) for i in range(8)
        }
        assert len(lines) == 1
        lines.update(MAP.counter_line_address_of(8 * CACHE_LINE_SIZE) for _ in [0])
        assert len(lines) == 2

    def test_data_group_base(self):
        assert MAP.data_group_base(7 * CACHE_LINE_SIZE) == 0
        assert MAP.data_group_base(8 * CACHE_LINE_SIZE) == 8 * CACHE_LINE_SIZE

    def test_counter_of_counter_rejected(self):
        with pytest.raises(AddressError):
            MAP.counter_address_of(MAP.counter_region_base)

    @given(st.integers(min_value=0, max_value=MAP.counter_region_base - 1))
    @settings(max_examples=100)
    def test_counter_addresses_never_collide_across_lines(self, address):
        """Two distinct data lines never share a counter address."""
        other = (address + CACHE_LINE_SIZE) % MAP.counter_region_base
        if AddressMap.line_base(other) != AddressMap.line_base(address):
            assert MAP.counter_address_of(address) != MAP.counter_address_of(other)


class TestValidation:
    def test_rejects_unaligned_size(self):
        with pytest.raises(AddressError):
            AddressMap(memory_size_bytes=MB + 7)

    def test_rejects_tiny_memory(self):
        with pytest.raises(AddressError):
            AddressMap(memory_size_bytes=CACHE_LINE_SIZE * 4)

    def test_rejects_non_power_of_two_banks(self):
        with pytest.raises(AddressError):
            AddressMap(memory_size_bytes=64 * MB, num_banks=6)
