"""Tests for the crash-consistency sweep machinery itself."""

import pytest

from repro.bench.harness import run_workload
from repro.config import KB
from repro.crash.checker import (
    CrashConsistencyReport,
    CrashOutcome,
    sweep_crash_points,
)
from repro.workloads.base import WorkloadParams

PARAMS = WorkloadParams(operations=5, footprint_bytes=8 * KB)


class TestReportAccounting:
    def test_counts(self):
        report = CrashConsistencyReport(
            design="x",
            outcomes=[
                CrashOutcome(crash_ns=1.0, consistent=True),
                CrashOutcome(crash_ns=2.0, consistent=False, problems=["p"]),
                CrashOutcome(crash_ns=3.0, consistent=True),
            ],
        )
        assert report.total == 3
        assert report.consistent == 2
        assert report.inconsistent == 1
        assert not report.all_consistent

    def test_first_failure(self):
        report = CrashConsistencyReport(
            design="x",
            outcomes=[
                CrashOutcome(crash_ns=1.0, consistent=True),
                CrashOutcome(crash_ns=2.0, consistent=False, problems=["bad"]),
            ],
        )
        assert report.first_failure().crash_ns == 2.0

    def test_first_failure_none_when_clean(self):
        report = CrashConsistencyReport(
            design="x", outcomes=[CrashOutcome(crash_ns=1.0, consistent=True)]
        )
        assert report.first_failure() is None

    def test_undecryptable_crashes(self):
        report = CrashConsistencyReport(
            design="x",
            outcomes=[
                CrashOutcome(crash_ns=1.0, consistent=False, undecryptable_lines=2),
                CrashOutcome(crash_ns=2.0, consistent=True, undecryptable_lines=0),
            ],
        )
        assert report.undecryptable_crashes == 1


class TestSweepMechanics:
    def test_max_points_bounds_work(self):
        outcome = run_workload("sca", "array", params=PARAMS)
        small = sweep_crash_points(outcome.result, outcome.validator(0), max_points=10)
        assert small.total <= 12  # per-kind halves plus endpoints

    def test_unbounded_sweep_covers_all_events(self):
        outcome = run_workload("sca", "array", params=PARAMS)
        full = sweep_crash_points(outcome.result, outcome.validator(0), max_points=None)
        limited = sweep_crash_points(outcome.result, outcome.validator(0), max_points=10)
        assert full.total >= limited.total

    def test_midpoints_can_be_disabled(self):
        outcome = run_workload("sca", "array", params=PARAMS)
        with_mid = sweep_crash_points(
            outcome.result, outcome.validator(0), max_points=40, include_midpoints=True
        )
        without = sweep_crash_points(
            outcome.result, outcome.validator(0), max_points=40, include_midpoints=False
        )
        assert without.total <= with_mid.total

    def test_validator_problems_propagate(self):
        outcome = run_workload("sca", "array", params=PARAMS)

        def paranoid_validator(_recovered):
            return ["always unhappy"]

        report = sweep_crash_points(outcome.result, paranoid_validator, max_points=5)
        assert report.inconsistent == report.total
        assert report.outcomes[0].problems == ["always unhappy"]

    def test_sweep_times_are_increasing(self):
        outcome = run_workload("sca", "array", params=PARAMS)
        report = sweep_crash_points(outcome.result, outcome.validator(0), max_points=30)
        times = [o.crash_ns for o in report.outcomes]
        assert times == sorted(times)
