"""Tests for the architectural counter store and address mapping."""

import pytest

from repro.config import CACHE_LINE_SIZE
from repro.crypto.counters import (
    COUNTER_LIMIT,
    CounterStore,
    counter_line_address,
    counter_slot,
)
from repro.errors import AddressError, CounterOverflowError

BASE = 1 << 20  # counter region base for these tests
SIZE = 2 << 20


@pytest.fixture
def store():
    return CounterStore(counter_region_base=BASE, memory_size_bytes=SIZE)


class TestMapping:
    def test_counter_line_address_groups_eight_lines(self):
        for line_index in range(16):
            address = line_index * CACHE_LINE_SIZE
            expected_group = (line_index // 8) * CACHE_LINE_SIZE
            assert counter_line_address(address, 0) == expected_group

    def test_counter_slot_cycles_mod_eight(self):
        slots = [counter_slot(i * CACHE_LINE_SIZE) for i in range(16)]
        assert slots == list(range(8)) * 2

    def test_counter_line_address_respects_base(self):
        assert counter_line_address(0, BASE) == BASE


class TestStore:
    def test_unwritten_counter_reads_zero(self, store):
        assert store.read(0x40) == 0

    def test_write_read_round_trip(self, store):
        store.write(0x40, 17)
        assert store.read(0x40) == 17

    def test_sub_line_addresses_share_a_counter(self, store):
        store.write(0x40, 5)
        assert store.read(0x47) == 5
        assert store.read(0x7F) == 5

    def test_adjacent_lines_have_independent_counters(self, store):
        store.write(0x00, 1)
        store.write(0x40, 2)
        assert store.read(0x00) == 1
        assert store.read(0x40) == 2

    def test_rejects_addresses_in_counter_region(self, store):
        with pytest.raises(AddressError):
            store.read(BASE)
        with pytest.raises(AddressError):
            store.write(BASE + 64, 1)

    def test_rejects_negative_address(self, store):
        with pytest.raises(AddressError):
            store.read(-64)

    def test_counter_overflow_detected(self, store):
        with pytest.raises(CounterOverflowError):
            store.write(0, COUNTER_LIMIT)


class TestCounterLines:
    def test_write_counter_line_sets_all_slots(self, store):
        values = tuple(range(10, 18))
        store.write_counter_line(0, values)
        assert store.read_counter_line(0) == values

    def test_counter_line_rejects_wrong_width(self, store):
        with pytest.raises(AddressError):
            store.write_counter_line(0, (1, 2, 3))

    def test_read_counter_line_any_member_address(self, store):
        values = tuple(range(8))
        store.write_counter_line(0, values)
        # Reading via the 5th line of the group returns the same tuple.
        assert store.read_counter_line(5 * CACHE_LINE_SIZE) == values

    def test_snapshot_restore_round_trip(self, store):
        store.write(0x40, 9)
        snapshot = store.snapshot()
        store.write(0x40, 10)
        store.restore(snapshot)
        assert store.read(0x40) == 9

    def test_touched_lines_sorted(self, store):
        store.write(0x100, 1)
        store.write(0x40, 1)
        assert list(store.touched_lines()) == [0x40, 0x100]
