"""Tests for the benchmark harness and reporting."""

import pytest

from repro.bench.harness import build_traces, run_workload, run_workload_multicore
from repro.bench.report import ExperimentResult, Series
from repro.config import KB, fast_config
from repro.workloads.base import WorkloadParams

PARAMS = WorkloadParams(operations=8, footprint_bytes=8 * KB)


class TestHarness:
    def test_run_workload_returns_stats_and_runs(self):
        outcome = run_workload("sca", "array", params=PARAMS)
        assert outcome.design == "sca"
        assert outcome.workload == "array"
        assert outcome.stats.runtime_ns > 0
        assert len(outcome.runs) == 1

    def test_validator_accepts_crash_free_final_state(self):
        from repro.crash.injector import CrashInjector
        from repro.crash.recovery import RecoveryManager

        outcome = run_workload("sca", "array", params=PARAMS)
        injector = CrashInjector(outcome.result)
        recovered = RecoveryManager(outcome.result.config.encryption).recover(
            injector.crash_at(outcome.stats.runtime_ns + 1e9)
        )
        assert outcome.validator(0)(recovered) == []

    def test_multicore_builds_one_trace_per_core(self):
        config = fast_config(num_cores=2)
        traces, runs, _layout = build_traces("array", config, params=PARAMS)
        assert len(traces) == 2
        assert len(runs) == 2

    def test_run_workload_multicore(self):
        outcomes = run_workload_multicore("sca", "array", (1, 2), params=PARAMS)
        assert set(outcomes) == {1, 2}
        assert outcomes[2].stats.num_cores == 2


class TestReport:
    def _result(self):
        series = Series("sca", {"array": 1.1, "queue": 1.2})
        return ExperimentResult(
            experiment="figX",
            title="Test figure",
            series=[series],
            claims={"holds": True, "fails": False},
            notes=["a note"],
        )

    def test_labels_union(self):
        result = self._result()
        assert result.labels() == ["array", "queue"]

    def test_series_lookup(self):
        result = self._result()
        assert result.series_by_name("sca").points["array"] == 1.1
        with pytest.raises(KeyError):
            result.series_by_name("nope")

    def test_render_contains_everything(self):
        text = self._result().render()
        assert "Test figure" in text
        assert "1.100" in text
        assert "claim [ok]: holds" in text
        assert "claim [MISS]: fails" in text
        assert "note: a note" in text

    def test_missing_cells_rendered_as_dash(self):
        result = ExperimentResult(
            experiment="e",
            title="t",
            series=[Series("a", {"x": 1.0}), Series("b", {"y": 2.0})],
        )
        assert "-" in result.render()


class TestCli:
    def test_list_mode(self, capsys):
        from repro.bench.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out and "table2" in out

    def test_table2_runs_clean(self, capsys):
        from repro.bench.cli import main

        assert main(["table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_unknown_experiment_errors(self, capsys):
        from repro.bench.cli import main

        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestJsonExport:
    def test_result_as_dict(self):
        result = ExperimentResult(
            experiment="e",
            title="t",
            series=[Series("a", {"x": 1.0})],
            claims={"c": True},
            notes=["n"],
        )
        data = result.as_dict()
        assert data["series"]["a"]["x"] == 1.0
        assert data["claims"] == {"c": True}

    def test_cli_json_file(self, tmp_path, capsys):
        import json

        from repro.bench.cli import main

        path = tmp_path / "out.json"
        assert main(["table2", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["results"][0]["experiment"] == "table2"
        assert data["results"][0]["scale"] == "quick"

    def test_cli_json_stdout(self, capsys):
        from repro.bench.cli import main

        assert main(["table2", "--json", "-"]) == 0
        out = capsys.readouterr().out
        assert '"experiment": "table2"' in out
