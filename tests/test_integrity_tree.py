"""Unit tests for the Bonsai tree engine and the tree-node cache."""

import pytest

from repro.config import CACHE_LINE_SIZE, COUNTERS_PER_LINE, EncryptionConfig
from repro.crypto.counter_cache import GROUP_SPAN
from repro.errors import AddressError, ConfigurationError
from repro.integrity import IntegrityTreeEngine, TreeNodeCache, derive_tree_key
from repro.nvm.address import AddressMap


def make_engine(memory_kb=64, arity=COUNTERS_PER_LINE):
    return IntegrityTreeEngine(
        EncryptionConfig(),
        AddressMap(memory_size_bytes=memory_kb * 1024),
        arity=arity,
    )


def populate(engine, groups, salt=1):
    """Update ``groups`` counter lines; returns the equivalent mapping."""
    counters = {}
    for group in range(groups):
        base = group * GROUP_SPAN
        values = tuple(group * COUNTERS_PER_LINE + i + salt for i in range(COUNTERS_PER_LINE))
        engine.update_group(base, values)
        for i, value in enumerate(values):
            counters[base + i * CACHE_LINE_SIZE] = value
    return counters


class TestTreeEngine:
    def test_empty_root_matches_empty_rebuild(self):
        engine = make_engine()
        assert engine.root == engine.root_over({})

    def test_incremental_update_matches_from_scratch_rebuild(self):
        engine = make_engine()
        counters = populate(engine, groups=13)
        assert engine.root == engine.root_over(counters)
        # Overwriting a group moves the root and stays consistent.
        before = engine.root
        engine.update_group(0, tuple(range(100, 100 + COUNTERS_PER_LINE)))
        for i in range(COUNTERS_PER_LINE):
            counters[i * CACHE_LINE_SIZE] = 100 + i
        assert engine.root != before
        assert engine.root == engine.root_over(counters)

    def test_update_returns_persistable_path_without_root(self):
        engine = make_engine()
        path = engine.update_group(0, (1,) * COUNTERS_PER_LINE)
        assert len(path) == engine.levels
        assert [level for level, _index in path] == list(range(engine.levels))
        # The root level never appears: it lives in the secure register.
        assert all(level < engine.levels for level, _index in path)

    def test_verify_leaf(self):
        engine = make_engine()
        values = tuple(range(1, COUNTERS_PER_LINE + 1))
        engine.update_group(GROUP_SPAN, values)
        assert engine.verify_leaf(GROUP_SPAN, values)
        tampered = (99,) + values[1:]
        assert not engine.verify_leaf(GROUP_SPAN, tampered)

    def test_leaf_index_validation(self):
        engine = make_engine()
        with pytest.raises(AddressError):
            engine.leaf_index(GROUP_SPAN + CACHE_LINE_SIZE)  # not a group base
        with pytest.raises(AddressError):
            engine.leaf_index(engine.num_leaves * GROUP_SPAN)  # out of region

    def test_leaf_digest_requires_full_line(self):
        engine = make_engine()
        with pytest.raises(AddressError):
            engine.leaf_digest((1, 2, 3))

    def test_rebuild_reseals_to_the_rebuilt_root(self):
        engine = make_engine()
        counters = populate(engine, groups=5)
        expected = engine.root_over(counters)
        dirty = make_engine()
        populate(dirty, groups=9, salt=7)  # unrelated working state
        assert dirty.rebuild(counters) == expected
        assert dirty.root == expected

    def test_node_addresses_line_aligned_in_counter_region(self):
        engine = make_engine()
        engine.update_group(0, (1,) * COUNTERS_PER_LINE)
        for node in list(engine._nodes):
            address = engine.node_address(node)
            assert address % CACHE_LINE_SIZE == 0
            assert engine.counter_region_base <= address
            assert address < engine.counter_region_base + engine.counter_region_bytes

    def test_state_roundtrip_preserves_root_and_verification(self):
        engine = make_engine()
        counters = populate(engine, groups=4)
        clone = make_engine()
        clone.set_state(engine.get_state())
        assert clone.root == engine.root
        assert clone.root == clone.root_over(counters)

    def test_key_derivation_is_deterministic_and_key_dependent(self):
        config = EncryptionConfig()
        other = EncryptionConfig(key=b"a-different-key!"[:16])
        assert derive_tree_key(config) == derive_tree_key(config)
        assert derive_tree_key(config) != derive_tree_key(other)
        # Different keys produce different digests over the same data.
        a = IntegrityTreeEngine(config, AddressMap(memory_size_bytes=64 * 1024))
        b = IntegrityTreeEngine(other, AddressMap(memory_size_bytes=64 * 1024))
        values = (5,) * COUNTERS_PER_LINE
        assert a.leaf_digest(values) != b.leaf_digest(values)

    def test_arity_must_be_power_of_two(self):
        for arity in (0, 1, 3, 6):
            with pytest.raises(ConfigurationError):
                make_engine(arity=arity)
        wide = make_engine(arity=16)
        assert wide.levels >= 1


class TestTreeNodeCache:
    def test_needs_at_least_one_entry(self):
        with pytest.raises(ConfigurationError):
            TreeNodeCache(0)

    def test_touch_miss_then_insert_hit(self):
        cache = TreeNodeCache(4)
        assert not cache.touch((0, 0))
        assert cache.insert((0, 0), dirty=False) is None
        assert cache.touch((0, 0))
        assert len(cache) == 1

    def test_eviction_returns_only_dirty_victims(self):
        cache = TreeNodeCache(2)
        cache.insert((0, 0), dirty=False)
        cache.insert((0, 1), dirty=True)
        # Clean LRU victim (0, 0) is dropped silently.
        assert cache.insert((0, 2), dirty=True) is None
        # Now (0, 1) is the dirty LRU victim and must be written back.
        assert cache.insert((0, 3), dirty=False) == (0, 1)

    def test_touch_refreshes_lru_order(self):
        cache = TreeNodeCache(2)
        cache.insert((0, 0), dirty=True)
        cache.insert((0, 1), dirty=True)
        cache.touch((0, 0))
        assert cache.insert((0, 2), dirty=False) == (0, 1)

    def test_clean_does_not_refresh_lru_order(self):
        cache = TreeNodeCache(2)
        cache.insert((0, 0), dirty=True)
        cache.insert((0, 1), dirty=True)
        assert cache.clean((0, 0))
        # (0, 0) stays LRU despite the writeback; being clean now, it
        # is dropped without a victim.
        assert cache.insert((0, 2), dirty=False) is None
        assert not cache.contains((0, 0))
        assert cache.contains((0, 1))

    def test_flush_dirty_is_sorted_and_cleans(self):
        cache = TreeNodeCache(8)
        cache.insert((1, 3), dirty=True)
        cache.insert((0, 5), dirty=True)
        cache.insert((0, 1), dirty=False)
        assert cache.flush_dirty() == [(0, 5), (1, 3)]
        assert cache.dirty_count() == 0
        assert cache.flush_dirty() == []

    def test_invalidate_all(self):
        cache = TreeNodeCache(4)
        cache.insert((0, 0), dirty=True)
        cache.invalidate_all()
        assert len(cache) == 0

    def test_state_roundtrip_preserves_order_and_dirty_bits(self):
        cache = TreeNodeCache(2)
        cache.insert((0, 0), dirty=True)
        cache.insert((0, 1), dirty=False)
        clone = TreeNodeCache(2)
        clone.set_state(cache.get_state())
        assert clone.dirty_count() == 1
        # LRU order survived: (0, 0) is still the dirty victim.
        assert clone.insert((0, 2), dirty=False) == (0, 0)
