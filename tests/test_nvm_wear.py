"""Tests for wear tracking and lifetime estimation (paper §6.3.3)."""

import pytest

from repro.nvm.wear import WearTracker


class TestTracking:
    def test_counts_per_line(self):
        tracker = WearTracker()
        tracker.record_write(0)
        tracker.record_write(0)
        tracker.record_write(64)
        assert tracker.writes_to(0) == 2
        assert tracker.writes_to(64) == 1
        assert tracker.total_writes == 3

    def test_report_fields(self):
        tracker = WearTracker(cell_endurance=100)
        for _ in range(10):
            tracker.record_write(0)
        tracker.record_write(64)
        report = tracker.report()
        assert report.total_line_writes == 11
        assert report.distinct_lines == 2
        assert report.max_line_writes == 10
        assert report.mean_line_writes == pytest.approx(5.5)
        assert report.uniform_lifetime_consumed == pytest.approx(5.5 / 100)
        assert report.unleveled_lifetime_consumed == pytest.approx(10 / 100)

    def test_empty_report(self):
        report = WearTracker().report()
        assert report.total_line_writes == 0
        assert report.uniform_lifetime_consumed == 0.0

    def test_rejects_bad_endurance(self):
        with pytest.raises(ValueError):
            WearTracker(cell_endurance=0)


class TestRelativeLifetime:
    def test_lower_traffic_means_longer_life(self):
        """The paper's §6.3.3 argument: under uniform wear leveling an
        8% write-traffic reduction is an ~8% lifetime improvement."""
        sca = WearTracker()
        fca = WearTracker()
        for i in range(92):
            sca.record_write(i * 64)
        for i in range(100):
            fca.record_write(i * 64)
        assert sca.relative_lifetime(fca) == pytest.approx(100 / 92)

    def test_zero_writes_is_infinite(self):
        fresh = WearTracker()
        used = WearTracker()
        used.record_write(0)
        assert fresh.relative_lifetime(used) == float("inf")
