"""Fault models: registry, determinism, and per-model image effects."""

import pytest

from repro.config import CACHE_LINE_SIZE, fast_config
from repro.crash.injector import CrashInjector
from repro.crash.recovery import RecoveryManager
from repro.crypto.counters import COUNTER_LIMIT
from repro.errors import FaultInjectionError
from repro.faults import (
    DEFAULT_SUITE,
    BitFlip,
    CounterCorruption,
    DroppedADRDrain,
    FaultEvent,
    NoFault,
    TornCounterLineWrite,
    TornDataLineWrite,
    apply_fault_models,
    default_fault_suite,
    derive_rng,
    list_fault_models,
    make_fault_model,
    model_from_spec,
)
from repro.sim.machine import Machine
from repro.sim.trace import TraceBuilder


def run_simple(design="sca", lines=6):
    builder = TraceBuilder("t")
    builder.txn_begin()
    for i in range(lines):
        builder.store_u64(0x1000 + i * 64, i + 1)
        builder.clwb(0x1000 + i * 64)
    builder.ccwb(0x1000)
    builder.persist_barrier()
    builder.txn_end()
    return Machine(fast_config(), design).run([builder.build()])


def end_image(result, injector=None, **kwargs):
    injector = injector or CrashInjector(result)
    return injector.crash_at(result.stats.runtime_ns + 1e6, **kwargs)


def first_events(model, result, seeds=range(24)):
    """Apply ``model`` to fresh end-of-run images until it reports events.

    Some models skip candidates that would be no-ops (e.g. a tear past
    every written slot); scanning a few seeds finds a mutating one
    deterministically.
    """
    injector = CrashInjector(result)
    for seed in seeds:
        image = end_image(result, injector)
        events = apply_fault_models(image, [model], seed)
        if events:
            return image, events, seed
    raise AssertionError("model %s never mutated the image" % model.name)


class TestRegistry:
    def test_suite_covers_every_model(self):
        assert set(list_fault_models()) == set(DEFAULT_SUITE)
        suite = default_fault_suite()
        assert [m.name for m in suite] == list(DEFAULT_SUITE)

    def test_unknown_name_rejected(self):
        with pytest.raises(FaultInjectionError):
            make_fault_model("meteor-strike")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(FaultInjectionError):
            make_fault_model("torn-data", wavelength=7)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: TornDataLineWrite(lines=0),
            lambda: TornCounterLineWrite(groups=0),
            lambda: BitFlip(region="parity"),
            lambda: BitFlip(flips=0),
            lambda: CounterCorruption(lines=-1),
            lambda: DroppedADRDrain(budget=-1),
        ],
    )
    def test_bad_parameters_rejected(self, factory):
        with pytest.raises(FaultInjectionError):
            factory()

    def test_spec_round_trip(self):
        for name in DEFAULT_SUITE:
            model = make_fault_model(name)
            rebuilt = model_from_spec(model.spec())
            assert rebuilt.name == model.name
            assert rebuilt.params() == model.params()


class TestDeterminism:
    def test_same_seed_same_events_and_image(self):
        result = run_simple()
        models = [TornDataLineWrite(), BitFlip(region="counter")]
        images, all_events = [], []
        for _ in range(2):
            image = end_image(result)
            all_events.append(apply_fault_models(image, models, seed=11))
            images.append(image)
        assert all_events[0] == all_events[1]
        lines = sorted(images[0].device.touched_lines())
        assert lines == sorted(images[1].device.touched_lines())
        for line in lines:
            assert (
                images[0].device.read_line(line).payload
                == images[1].device.read_line(line).payload
            )

    def test_rng_streams_independent_per_model(self):
        left = derive_rng(3, (), 0, "torn-data")
        right = derive_rng(3, (), 1, "bitflip-data")
        assert left.random() != right.random()

    def test_events_serialize(self):
        event = FaultEvent(model="torn-data", kind="torn-line", address=0x40)
        assert event.as_dict()["address"] == 0x40


class TestModelEffects:
    def test_no_fault_is_inert(self):
        result = run_simple()
        clean = end_image(result)
        image = end_image(result)
        assert apply_fault_models(image, [NoFault()], seed=1) == []
        for line in clean.device.touched_lines():
            assert (
                image.device.read_line(line).payload
                == clean.device.read_line(line).payload
            )

    def test_torn_data_zeroes_tail_and_still_decrypts(self):
        result = run_simple()
        image, events, _seed = first_events(TornDataLineWrite(), result)
        clean = end_image(result)
        (event,) = events
        assert event.kind == "torn-line"
        torn = image.device.read_line(event.address).payload
        original = clean.device.read_line(event.address).payload
        assert torn != original
        tear = next(
            offset
            for offset in range(CACHE_LINE_SIZE)
            if torn[offset:] == bytes(CACHE_LINE_SIZE - offset)
        )
        assert torn[:tear] == original[:tear]
        # The counter ground truth is untouched: the torn line passes
        # the Eq.-4 check, making this the silent-corruption vector.
        assert image.counter_store.read(event.address) == clean.counter_store.read(
            event.address
        )
        recovered = RecoveryManager(result.config.encryption).recover(
            image, encrypted=True
        )
        assert event.address not in recovered.garbage_lines

    def test_torn_counter_reverts_slots_and_is_detectable(self):
        result = run_simple()
        image, events, _seed = first_events(TornCounterLineWrite(), result)
        clean = end_image(result)
        (event,) = events
        torn_slots = image.counter_store.read_counter_line(event.address)
        clean_slots = clean.counter_store.read_counter_line(event.address)
        assert torn_slots != clean_slots
        assert all(t in (c, c - 1) for t, c in zip(torn_slots, clean_slots))
        recovered = RecoveryManager(result.config.encryption).recover(
            image, encrypted=True
        )
        assert recovered.garbage_lines

    def test_bitflip_data_flips_exactly_one_bit_per_event(self):
        result = run_simple()
        image, events, _seed = first_events(BitFlip(region="data"), result)
        clean = end_image(result)
        (event,) = events
        flipped = image.device.read_line(event.address).payload
        original = clean.device.read_line(event.address).payload
        delta = [a ^ b for a, b in zip(flipped, original)]
        assert sum(bin(d).count("1") for d in delta) == 1

    def test_bitflip_counter_changes_architectural_counter(self):
        result = run_simple()
        image, events, _seed = first_events(BitFlip(region="counter"), result)
        clean = end_image(result)
        (event,) = events
        assert image.counter_store.read(event.address) != clean.counter_store.read(
            event.address
        )

    def test_counter_corruption_displaces_beyond_search_lag(self):
        result = run_simple()
        image, events, _seed = first_events(CounterCorruption(), result)
        clean = end_image(result)
        (event,) = events
        corrupt = image.counter_store.read(event.address)
        original = clean.counter_store.read(event.address)
        displacement = (corrupt - original) % COUNTER_LIMIT
        assert displacement >= CounterCorruption.MIN_DISPLACEMENT

    def test_dropped_adr_loses_ready_entries(self):
        result = run_simple(lines=6)
        injector = CrashInjector(result)
        crash_ns = next(
            (
                t
                for t in sorted(
                    set(injector.interesting_times())
                    | set(injector.midpoint_times())
                )
                if injector.crash_at(t).adr_pending > 0
            ),
            None,
        )
        assert crash_ns is not None, "no crash point with a pending ADR drain"
        clean = injector.crash_at(crash_ns)
        image, events = injector.crash_with_faults(
            crash_ns, [DroppedADRDrain(budget=0)], seed=5
        )
        (event,) = events
        assert event.kind == "dropped-drain"
        assert set(image.device.touched_lines()) <= set(clean.device.touched_lines())
        # A generous budget funds the full drain: nothing to report.
        funded, no_events = injector.crash_with_faults(
            crash_ns, [DroppedADRDrain(budget=clean.adr_pending)], seed=5
        )
        assert no_events == []
        assert set(funded.device.touched_lines()) == set(clean.device.touched_lines())

    def test_models_tolerate_empty_images(self):
        result = run_simple()
        injector = CrashInjector(result)
        for name in DEFAULT_SUITE:
            image = injector.crash_at(0.0)
            assert apply_fault_models(image, [make_fault_model(name)], seed=2) == []
