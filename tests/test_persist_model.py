"""Tests for the per-core persistency tracker (clwb/sfence bookkeeping)."""

import pytest

from repro.errors import PersistencyError
from repro.persist.model import PersistencyTracker


class TestFences:
    def test_fence_with_nothing_outstanding_is_free(self):
        tracker = PersistencyTracker()
        assert tracker.fence(100.0) == 100.0

    def test_fence_waits_for_latest_acceptance(self):
        tracker = PersistencyTracker()
        tracker.note_writeback(50.0)
        tracker.note_writeback(200.0)
        tracker.note_writeback(120.0)
        assert tracker.fence(100.0) == 200.0

    def test_fence_does_not_move_backward(self):
        tracker = PersistencyTracker()
        tracker.note_writeback(50.0)
        assert tracker.fence(100.0) == 100.0

    def test_fence_clears_pending(self):
        tracker = PersistencyTracker()
        tracker.note_writeback(500.0)
        tracker.fence(0.0)
        assert tracker.outstanding == 0
        assert tracker.fence(1.0) == 1.0

    def test_stall_accounting(self):
        tracker = PersistencyTracker()
        tracker.note_writeback(150.0)
        tracker.fence(100.0)
        assert tracker.total_fence_stall_ns == pytest.approx(50.0)

    def test_negative_acceptance_rejected(self):
        tracker = PersistencyTracker()
        with pytest.raises(PersistencyError):
            tracker.note_writeback(-1.0)

    def test_counters(self):
        tracker = PersistencyTracker()
        tracker.note_writeback(1.0)
        tracker.note_writeback(2.0)
        tracker.fence(0.0)
        tracker.fence(0.0)
        assert tracker.writebacks == 2
        assert tracker.fences == 2

    def test_reset(self):
        tracker = PersistencyTracker()
        tracker.note_writeback(100.0)
        tracker.reset()
        assert tracker.outstanding == 0
