"""Tests for the Table 1 atomicity classification."""

import pytest

from repro.core.atomicity import (
    TABLE1,
    AtomicityClass,
    TxnStage,
    classify_write,
    required_counter_atomic_fraction,
    stage_rule,
)


class TestTable1:
    def test_three_stages(self):
        assert [rule.stage for rule in TABLE1] == [
            TxnStage.PREPARE,
            TxnStage.MUTATE,
            TxnStage.COMMIT,
        ]

    def test_only_commit_requires_counter_atomicity(self):
        required = {rule.stage: rule.counter_atomicity_required for rule in TABLE1}
        assert required == {
            TxnStage.PREPARE: False,
            TxnStage.MUTATE: False,
            TxnStage.COMMIT: True,
        }

    def test_prepare_recovers_from_data(self):
        assert stage_rule(TxnStage.PREPARE).recovery_source == "data"

    def test_mutate_recovers_from_backup(self):
        assert stage_rule(TxnStage.MUTATE).recovery_source == "backup"

    def test_commit_recovery_decided_by_record(self):
        assert stage_rule(TxnStage.COMMIT).recovery_source == "commit-record"


class TestClassification:
    def test_prepare_writes_relaxable(self):
        assert classify_write(TxnStage.PREPARE) is AtomicityClass.RELAXABLE

    def test_mutate_writes_relaxable(self):
        assert classify_write(TxnStage.MUTATE) is AtomicityClass.RELAXABLE

    def test_commit_record_is_commit_point(self):
        assert (
            classify_write(TxnStage.COMMIT, is_commit_record=True)
            is AtomicityClass.COMMIT_POINT
        )

    def test_any_commit_stage_write_is_commit_point(self):
        assert classify_write(TxnStage.COMMIT) is AtomicityClass.COMMIT_POINT


class TestCounterAtomicFraction:
    def test_fraction_shrinks_with_transaction_size(self):
        """The Figure 16 driver: bigger transactions amortize the
        commit record's counter-atomic write."""
        fractions = [required_counter_atomic_fraction(n) for n in (1, 4, 16, 64)]
        assert fractions == sorted(fractions, reverse=True)

    def test_single_line_value(self):
        # 1 line -> 2 writes (log + data) + 1 commit record.
        assert required_counter_atomic_fraction(1) == pytest.approx(1 / 3)

    def test_zero_lines_rejected(self):
        with pytest.raises(ValueError):
            required_counter_atomic_fraction(0)
