"""Hot-path kernel correctness: T-table AES, big-int XOR, pad LRU.

The fast paths must be bit-for-bit equivalent to the retained reference
implementations — the perf harness measures them, these tests pin them.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import EncryptionConfig
from repro.crypto.aes import AES128
from repro.crypto.otp import OTPCipher, _xor, _xor_reference, make_block_cipher

LINE = st.binary(min_size=64, max_size=64)
BLOCK = st.binary(min_size=16, max_size=16)
KEY = st.binary(min_size=16, max_size=16)


class TestTTableAES:
    def test_fips197_appendix_b_fast_path(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert AES128(key).encrypt_block(plaintext) == expected

    def test_fips197_appendix_c1_both_paths(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        aes = AES128(key)
        assert aes.encrypt_block(plaintext) == expected
        assert aes._encrypt_block_slow(plaintext) == expected

    @given(KEY, BLOCK)
    @settings(max_examples=60)
    def test_fast_path_matches_slow_path(self, key, block):
        aes = AES128(key)
        assert aes.encrypt_block(block) == aes._encrypt_block_slow(block)

    @given(KEY, BLOCK)
    @settings(max_examples=30)
    def test_decrypt_inverts_fast_encrypt(self, key, block):
        aes = AES128(key)
        assert aes.decrypt_block(aes.encrypt_block(block)) == block

    def test_encrypt_blocks_matches_single_block_calls(self):
        aes = AES128(bytes(range(16)))
        blocks = [bytes([i] * 16) for i in range(32)]
        assert aes.encrypt_blocks(blocks) == [aes.encrypt_block(b) for b in blocks]

    def test_fast_path_matches_slow_path_exhaustive_sample(self):
        rng = random.Random(7)
        for _ in range(200):
            key = bytes(rng.randrange(256) for _ in range(16))
            block = bytes(rng.randrange(256) for _ in range(16))
            aes = AES128(key)
            assert aes.encrypt_block(block) == aes._encrypt_block_slow(block)


class TestFastXor:
    @given(LINE, LINE)
    @settings(max_examples=100)
    def test_matches_reference_on_64_byte_lines(self, left, right):
        assert _xor(left, right) == _xor_reference(left, right)

    @given(LINE, LINE)
    @settings(max_examples=50)
    def test_self_inverse(self, pad, plaintext):
        assert _xor(pad, _xor(pad, plaintext)) == plaintext

    def test_handles_all_zero_and_all_ff(self):
        zeros, ones = bytes(64), bytes([0xFF] * 64)
        assert _xor(zeros, ones) == ones
        assert _xor(ones, ones) == zeros

    def test_arbitrary_lengths(self):
        for size in (1, 8, 16, 63, 64, 65, 128):
            left = bytes(range(size % 256))[:size].ljust(size, b"\x55")
            right = bytes([0xA7] * size)
            assert _xor(left, right) == _xor_reference(left, right)


class TestPadLRUCache:
    def _cipher(self, limit=None):
        cipher = OTPCipher(make_block_cipher(EncryptionConfig()))
        if limit is not None:
            cipher._pad_cache_limit = limit
        return cipher

    def test_hit_and_miss_counters(self):
        cipher = self._cipher()
        cipher.pad(0x40, 1)
        cipher.pad(0x40, 1)
        cipher.pad(0x80, 1)
        stats = cipher.pad_cache_stats
        assert stats["misses"] == 2
        assert stats["hits"] == 1
        assert stats["entries"] == 2

    def test_eviction_is_lru_not_clear_all(self):
        cipher = self._cipher(limit=4)
        pads = {i: cipher.pad(i * 64, 1) for i in range(4)}
        cipher.pad(0 * 64, 1)  # touch 0 so 1 becomes the LRU victim
        cipher.pad(4 * 64, 1)  # evicts exactly one entry
        stats = cipher.pad_cache_stats
        assert stats["evictions"] == 1
        assert stats["entries"] == 4
        hits_before = cipher.pad_hits
        assert cipher.pad(0, 1) == pads[0]  # still cached
        assert cipher.pad_hits == hits_before + 1
        cipher.pad(64, 1)  # the evicted entry: a fresh miss
        assert cipher.pad_cache_stats["evictions"] == 2

    def test_eviction_never_changes_pad_values(self):
        cipher = self._cipher(limit=3)
        reference = {}
        for i in range(12):
            reference[(i * 64, i)] = cipher.pad(i * 64, i)
        for (address, counter), expected in reference.items():
            assert cipher.pad(address, counter) == expected

    def test_encrypt_decrypt_roundtrip_across_evictions(self):
        cipher = self._cipher(limit=2)
        line = bytes(i % 256 for i in range(64))
        encrypted = {}
        for i in range(10):
            encrypted[i] = cipher.encrypt(i * 64, i + 1, line)
        for i in range(10):
            assert cipher.decrypt(i * 64, i + 1, encrypted[i]) == line
