"""Tests for the bank/bus timing model (read priority, rows, scaling)."""

import pytest

from repro.config import NVMTimingConfig
from repro.nvm.timing import BankTimingModel, BusModel

TIMING = NVMTimingConfig(num_banks=8)


class TestBankReads:
    def test_idle_read_latency_is_row_miss(self):
        banks = BankTimingModel(TIMING)
        access = banks.schedule_read(0, 100.0, row=1)
        assert access.complete_ns == pytest.approx(100.0 + TIMING.read_access_ns)

    def test_row_hit_is_column_latency_only(self):
        banks = BankTimingModel(TIMING)
        banks.schedule_read(0, 0.0, row=1)
        access = banks.schedule_read(0, 1000.0, row=1)
        assert access.complete_ns == pytest.approx(1000.0 + TIMING.t_cl_ns)
        assert banks.row_hits == 1

    def test_row_conflict_pays_full_latency(self):
        banks = BankTimingModel(TIMING)
        banks.schedule_read(0, 0.0, row=1)
        access = banks.schedule_read(0, 1000.0, row=2)
        assert access.complete_ns == pytest.approx(1000.0 + TIMING.read_access_ns)

    def test_back_to_back_reads_serialize_per_bank(self):
        banks = BankTimingModel(TIMING)
        first = banks.schedule_read(0, 0.0)
        second = banks.schedule_read(0, 0.0)
        assert second.start_ns == pytest.approx(first.complete_ns)

    def test_different_banks_run_in_parallel(self):
        banks = BankTimingModel(TIMING)
        first = banks.schedule_read(0, 0.0)
        second = banks.schedule_read(1, 0.0)
        assert second.start_ns == pytest.approx(first.start_ns)


class TestReadWritePriority:
    def test_read_never_waits_for_queued_write(self):
        """Reads preempt writes (write cancellation); a read issued
        while a long PCM write occupies the bank starts immediately."""
        banks = BankTimingModel(TIMING)
        banks.schedule_write(0, 0.0)
        read = banks.schedule_read(0, 10.0)
        assert read.start_ns == pytest.approx(10.0)

    def test_write_waits_for_earlier_read(self):
        banks = BankTimingModel(TIMING)
        read = banks.schedule_read(0, 0.0)
        write = banks.schedule_write(0, 0.0)
        assert write.start_ns >= read.complete_ns

    def test_writes_serialize_per_bank_with_recovery(self):
        banks = BankTimingModel(TIMING)
        first = banks.schedule_write(0, 0.0)
        second = banks.schedule_write(0, 0.0)
        assert second.start_ns == pytest.approx(first.complete_ns + TIMING.t_wtr_ns)

    def test_write_closes_open_row(self):
        banks = BankTimingModel(TIMING)
        banks.schedule_read(0, 0.0, row=1)
        banks.schedule_write(0, 100.0, row=1)
        late_read = banks.schedule_read(0, 10000.0, row=1)
        # Row was closed by the write: full latency again.
        assert late_read.complete_ns == pytest.approx(10000.0 + TIMING.read_access_ns)


class TestLatencyScaling:
    def test_read_scale_stretches_reads_only(self):
        slow = NVMTimingConfig(read_latency_scale=10.0)
        assert slow.read_access_ns == pytest.approx(630.0)
        assert slow.write_access_ns == pytest.approx(313.0)

    def test_write_scale_stretches_writes_only(self):
        slow = NVMTimingConfig(write_latency_scale=2.0)
        assert slow.write_access_ns == pytest.approx(626.0)
        assert slow.read_access_ns == pytest.approx(63.0)

    def test_row_hit_scales_with_read_latency(self):
        banks = BankTimingModel(NVMTimingConfig(read_latency_scale=2.0))
        banks.schedule_read(0, 0.0, row=1)
        access = banks.schedule_read(0, 1000.0, row=1)
        assert access.complete_ns == pytest.approx(1000.0 + 2.0 * 15.0)


class TestBus:
    def test_transfer_duration(self):
        bus = BusModel(TIMING)
        done = bus.schedule_transfer(0.0, 64)
        assert done == pytest.approx(8 * TIMING.beat_ns)

    def test_transfers_serialize(self):
        bus = BusModel(TIMING)
        first = bus.schedule_transfer(0.0, 64)
        second = bus.schedule_transfer(0.0, 64)
        assert second == pytest.approx(first + 8 * TIMING.beat_ns)

    def test_utilization(self):
        bus = BusModel(TIMING)
        bus.schedule_transfer(0.0, 64)
        assert 0.0 < bus.utilization(100.0) < 1.0
        assert bus.utilization(0.0) == 0.0

    def test_bytes_accounting(self):
        bus = BusModel(TIMING)
        bus.schedule_transfer(0.0, 64)
        bus.schedule_transfer(0.0, 72)
        assert bus.bytes_moved == 136

    def test_reset(self):
        bus = BusModel(TIMING)
        bus.schedule_transfer(0.0, 64)
        bus.reset()
        assert bus.transfers == 0
        assert bus.schedule_transfer(0.0, 64) == pytest.approx(8 * TIMING.beat_ns)
