"""Smoke tests: the shipped examples run cleanly end to end.

``design_space_sweep.py`` is excluded here for runtime (it is
exercised by the bench harness paths it shares); the remaining
examples complete in seconds and assert their own invariants
internally.
"""

import os
import runpy
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

FAST_EXAMPLES = [
    "quickstart.py",
    "linked_list_crash.py",
    "counter_recovery.py",
    "record_and_replay.py",
    "kv_store.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_cleanly(script, capsys):
    path = os.path.join(EXAMPLES_DIR, script)
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), "%s produced no output" % script


def test_every_example_has_a_module_docstring():
    for name in os.listdir(EXAMPLES_DIR):
        if not name.endswith(".py"):
            continue
        with open(os.path.join(EXAMPLES_DIR, name), encoding="utf-8") as stream:
            text = stream.read()
        assert '"""' in text.split("\n", 3)[1] or text.startswith(
            '#!'
        ), "%s lacks a docstring" % name


def test_quickstart_reports_consistency(capsys):
    runpy.run_path(os.path.join(EXAMPLES_DIR, "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "every recovered state was consistent" in out


def test_linked_list_contrast(capsys):
    runpy.run_path(
        os.path.join(EXAMPLES_DIR, "linked_list_crash.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    assert "unsafe" in out and "sca" in out
    # The unsafe sweep reports failures; the SCA sweep reports none.
    sca_line = next(l for l in out.splitlines() if l.startswith("sca"))
    assert " 0 inconsistent" in sca_line
