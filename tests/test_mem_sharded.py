"""Unit tests for the sharded memory system and its failure model.

Property coverage (bijection, crash-at-any-instant) lives in
``tests/test_property_sharding.py``; golden equivalence at ``shards=1``
in ``tests/test_refactor_equivalence.py``.  This file pins the concrete
contracts of the coordinator and the cross-shard barrier:

* the facade folds per-shard stats/journals into the singleton
  controller surface (merged journal ordered and injective, stats sums
  matching the per-shard controllers, snapshot round-trip);
* the ``CrossShardBarrier`` writes one well-formed ``CommitRecord`` per
  transaction, in commit order;
* ``durable_commit_prefix`` keeps the whole log when nothing failed and
  never counts commits past the crash instant;
* the shard-subset failure sweep never silently loses a durable-acked
  commit, and the session-level reconciliation
  (:func:`repro.crash.session.run_sharded_session`) reports it.
"""

import pytest

from repro.bench.harness import run_workload
from repro.config import KB, fast_config
from repro.crash.session import RecoverySession, run_sharded_session
from repro.crash.sharded import (
    durable_commit_prefix,
    required_prefix_for_core,
    shard_crash_image,
    sweep_shard_failures,
)
from repro.errors import SimulationError
from repro.workloads.base import WorkloadParams

PARAMS = WorkloadParams(operations=10, footprint_bytes=8 * KB)


@pytest.fixture(scope="module")
def sharded_run():
    return run_workload(
        "sca", "array", config=fast_config(shards=4), params=PARAMS
    )


@pytest.fixture(scope="module")
def result(sharded_run):
    return sharded_run.result


class TestFacade:
    def test_machine_constructs_the_facade_only_when_sharded(self, result):
        from repro.mem.sharded import ShardedMemorySystem

        assert isinstance(result.controller, ShardedMemorySystem)
        assert result.controller.shards == 4
        singleton = run_workload(
            "sca", "array", config=fast_config(shards=1), params=PARAMS
        )
        assert not isinstance(singleton.result.controller, ShardedMemorySystem)

    def test_merged_journal_is_ordered_and_injective(self, result):
        controller = result.controller
        merged = controller.journal
        per_shard = sum(
            len(controller.shard_journal(s).records)
            for s in range(controller.shards)
        )
        assert len(merged.records) == per_shard > 0
        accepts = [r.accept_ns for r in merged.records]
        assert accepts == sorted(accepts)
        ids = [r.entry_id for r in merged.records]
        assert len(set(ids)) == len(ids)

    def test_stats_fold_over_the_shards(self, result):
        controller = result.controller
        folded = controller.stats
        shard_stats = [c.stats for c in controller.controllers]
        for field in ("data_writes", "counter_writes", "reads"):
            assert getattr(folded, field) == sum(
                getattr(s, field) for s in shard_stats
            )

    def test_snapshot_round_trip(self, result):
        controller = result.controller
        state = controller.get_state()
        before = [
            (r.entry_id, r.accept_ns, r.address) for r in controller.journal.records
        ]
        commits_before = len(controller.journal.commits)
        controller.set_state(state)
        after = [
            (r.entry_id, r.accept_ns, r.address) for r in controller.journal.records
        ]
        assert after == before
        assert len(controller.journal.commits) == commits_before


class TestCrossShardBarrier:
    def test_one_commit_record_per_transaction(self, sharded_run):
        result = sharded_run.result
        commits = result.controller.journal.commits
        assert len(commits) == len(sharded_run.runs[0].history)
        assert [c.sequence for c in commits] == list(range(len(commits)))
        times = [c.commit_ns for c in commits]
        assert times == sorted(times)

    def test_watermarks_name_real_shards(self, result):
        shards = result.controller.shards
        for commit in result.controller.journal.commits:
            assert commit.shard_watermarks, "commit touched no shard"
            for shard, watermark in commit.shard_watermarks.items():
                assert 0 <= shard < shards
                assert 0.0 <= watermark <= commit.commit_ns

    def test_singleton_records_no_commits(self):
        singleton = run_workload(
            "sca", "array", config=fast_config(shards=1), params=PARAMS
        )
        assert singleton.result.controller.journal.commits == []


class TestDurablePrefix:
    def test_no_failure_keeps_the_whole_acked_log(self, result):
        controller = result.controller
        journals = [
            controller.shard_journal(s) for s in range(controller.shards)
        ]
        commits = controller.journal.commits
        end = result.stats.runtime_ns + 1.0
        prefix = durable_commit_prefix(commits, journals, end)
        assert prefix == commits
        assert required_prefix_for_core(prefix, core=0) == len(commits)

    def test_prefix_never_counts_commits_past_the_crash(self, result):
        controller = result.controller
        journals = [
            controller.shard_journal(s) for s in range(controller.shards)
        ]
        commits = controller.journal.commits
        mid = commits[len(commits) // 2].commit_ns
        prefix = durable_commit_prefix(commits, journals, mid)
        assert all(c.commit_ns <= mid for c in prefix)
        assert len(prefix) < len(commits)

    def test_failed_shard_with_zero_budget_shortens_the_prefix(self, result):
        controller = result.controller
        journals = [
            controller.shard_journal(s) for s in range(controller.shards)
        ]
        commits = controller.journal.commits
        end = result.stats.runtime_ns + 1.0
        all_failed = tuple(range(controller.shards))
        prefix = durable_commit_prefix(
            commits, journals, end, all_failed, adr_budget=0
        )
        assert len(prefix) <= len(commits)

    def test_singleton_run_rejects_shard_failures(self):
        singleton = run_workload(
            "sca", "array", config=fast_config(shards=1), params=PARAMS
        )
        with pytest.raises(SimulationError):
            shard_crash_image(singleton.result, 100.0, (0,))


class TestSubsetFailures:
    def test_sweep_never_loses_a_durable_commit(self, sharded_run):
        report = sweep_shard_failures(
            sharded_run.result, sharded_run.runs[0], max_points=8
        )
        assert report.shards == 4
        assert report.total > 0
        assert report.acked_losses == []
        # Every outcome is accounted: consistent, detected, or a torn
        # uncommitted transaction (documented physics, never a durable
        # loss — see docs/sharding.md).
        for outcome in report.outcomes:
            assert outcome.reconciled

    def test_session_reconciliation(self, sharded_run):
        result = sharded_run.result
        validator = sharded_run.validator(0)

        def classify(recovered, context):
            return validator.classify(recovered, context=context)

        session = RecoverySession(
            result.config, encrypted=result.policy.encrypts
        )
        # Before anything was accepted the failed shard has nothing to
        # lose: the ladder recovers the empty prefix and reconciliation
        # demands nothing.
        outcome = run_sharded_session(
            session, result, 0.0, failed_shards=(1,), classify=classify
        )
        assert outcome.status == "consistent"
        assert "reconcile:durable=0" in outcome.ledger.path
        # At end of run a failed shard may tear transactions whose undo
        # entries it never drained (documented physics) — but the
        # reconciliation step must run, recovery must not crash, and a
        # consistent verdict must cover the durable commit prefix.
        end = result.stats.runtime_ns + 1.0
        outcome = run_sharded_session(
            session, result, end, failed_shards=(1,), classify=classify
        )
        assert outcome.status != "crashed"
        marks = [
            step for step in outcome.ledger.path
            if step.startswith("reconcile:durable=")
        ]
        assert marks
        if outcome.status == "consistent":
            required = int(marks[-1].split("=")[1])
            assert outcome.verdict.matched_prefix >= required
