"""Tests for the controller's event bus, subscribers, and designs CLI."""

import dataclasses
import json

import pytest

from repro.bench.cli import main as cli_main
from repro.bench.harness import build_traces
from repro.config import fast_config
from repro.core.designs import get_design
from repro.mem.controller import MemoryController
from repro.mem.events import (
    ControllerStats,
    DataPersistEvent,
    EventBus,
    JsonlTraceSubscriber,
    MemoryEvent,
    ReadEvent,
    StatsSubscriber,
)
from repro.sim.machine import Machine
from repro.workloads.base import WorkloadParams


def run_machine(config, design="sca", workload="hash", operations=4, seed=7):
    traces, _runs, _layout = build_traces(
        workload, config, "undo", WorkloadParams(operations=operations, seed=seed)
    )
    machine = Machine(config, design)
    result = machine.run(traces)
    return machine, result


class TestEventBus:
    def test_synchronous_in_order_dispatch(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(("a", e)))
        bus.subscribe(lambda e: seen.append(("b", e)))
        event = ReadEvent(
            address=0, request_ns=0.0, complete_ns=1.0, payload_bytes=64,
            counter_cache_hit=False,
        )
        bus.emit(event)
        assert seen == [("a", event), ("b", event)]

    def test_events_are_frozen(self):
        event = DataPersistEvent(
            address=64, payload_bytes=64, coalesced=False, accept_ns=1.0, drain_ns=2.0
        )
        with pytest.raises(dataclasses.FrozenInstanceError):
            event.address = 0


class TestStatsDerivation:
    """ControllerStats is purely a fold over the event stream."""

    @pytest.mark.parametrize("design", ["no-encryption", "co-located-cc", "sca", "fca+bmt"])
    def test_independent_subscriber_reproduces_stats(self, design):
        config = fast_config(num_cores=2, functional=True)
        traces, _runs, _layout = build_traces(
            "hash", config, "undo", WorkloadParams(operations=4, seed=7)
        )
        machine = Machine(config, design)
        shadow = StatsSubscriber()
        machine.controller.events.subscribe(shadow)
        machine.run(traces)
        assert dataclasses.asdict(shadow.stats) == dataclasses.asdict(
            machine.controller.stats
        )

    def test_stats_survive_state_roundtrip(self):
        config = fast_config(num_cores=1, functional=True)
        machine, _result = run_machine(config)
        controller = machine.controller
        state = controller.get_state()
        fresh = MemoryController(config, get_design("sca"))
        fresh.set_state(state)
        assert dataclasses.asdict(fresh.stats) == dataclasses.asdict(controller.stats)
        # The restored stats object is live — the stats subscriber must
        # keep folding new events into it, not into a stale instance.
        fresh.events.emit(
            ReadEvent(
                address=0, request_ns=0.0, complete_ns=5.0, payload_bytes=64,
                counter_cache_hit=False,
            )
        )
        assert fresh.stats.reads == controller.stats.reads + 1


class TestJsonlTrace:
    def test_trace_records_typed_events(self, tmp_path):
        trace_path = tmp_path / "events.jsonl"
        config = fast_config(num_cores=1, functional=True)
        config = dataclasses.replace(
            config,
            controller=dataclasses.replace(
                config.controller, event_trace_path=str(trace_path)
            ),
        )
        _machine, result = run_machine(config)
        lines = trace_path.read_text().strip().splitlines()
        assert lines, "trace should not be empty"
        records = [json.loads(line) for line in lines]
        kinds = {record["kind"] for record in records}
        assert {"read", "write-request", "data-persist", "drain"} <= kinds
        reads = sum(1 for record in records if record["kind"] == "read")
        assert reads == result.controller.stats.reads

    def test_no_trace_file_without_config(self, tmp_path):
        config = fast_config(num_cores=1, functional=True)
        machine, _result = run_machine(config)
        assert machine.controller._trace is None

    def test_subscriber_writes_and_closes(self, tmp_path):
        path = tmp_path / "t.jsonl"
        subscriber = JsonlTraceSubscriber(str(path))
        subscriber(
            DataPersistEvent(
                address=64, payload_bytes=64, coalesced=False, accept_ns=1.0, drain_ns=2.0
            )
        )
        subscriber.close()
        record = json.loads(path.read_text())
        assert record["kind"] == "data-persist"
        assert record["address"] == 64


class TestDesignsCli:
    def test_matrix_lists_every_design(self, capsys):
        assert cli_main(["designs"]) == 0
        out = capsys.readouterr().out
        for name in (
            "no-encryption", "ideal", "unsafe", "co-located", "co-located-cc",
            "fca", "sca", "fca+bmt", "sca+bmt", "fca+bmt-lazy", "sca+bmt-eager",
        ):
            assert name in out
        assert "72b" in out and "64b" in out
        assert "NO" in out  # the unsafe design's verdict

    def test_json_output(self, tmp_path, capsys):
        path = tmp_path / "designs.json"
        assert cli_main(["designs", "--json", str(path)]) == 0
        document = json.loads(path.read_text())
        rows = {row["name"]: row for row in document["designs"]}
        assert len(rows) == 11
        assert rows["sca+bmt"]["atomicity"] == "sca"
        assert rows["sca+bmt"]["integrity"] == "lazy"
        assert rows["co-located"]["bus_bits"] == 72
        assert rows["unsafe"]["crash_consistent"] is False
