"""The parallel sweep engine: determinism, caching, invalidation."""

import dataclasses

import pytest

from repro.bench.experiments import Fig13MultiCore, get_experiment
from repro.bench.parallel import (
    ResultCache,
    SweepExecutor,
    SweepJob,
    execute_job,
    job_cache_key,
    stats_from_dict,
    stats_to_dict,
)
from repro.config import fast_config
from repro.workloads.base import WorkloadParams

PARAMS = WorkloadParams(operations=12, footprint_bytes=16 * 1024)


def small_jobs():
    config = fast_config()
    return [
        SweepJob(design, workload, config=config, params=PARAMS)
        for workload in ("array", "queue")
        for design in ("no-encryption", "sca")
    ]


class TestDeterministicExecution:
    def test_serial_and_parallel_results_identical(self):
        jobs = small_jobs()
        serial = SweepExecutor(workers=1).map_stats(jobs)
        parallel = SweepExecutor(workers=4).map_stats(jobs)
        assert len(serial) == len(parallel) == len(jobs)
        for left, right in zip(serial, parallel):
            # Values, not just shapes: the full stats dicts must match.
            assert stats_to_dict(left) == stats_to_dict(right)

    def test_experiment_values_identical_across_worker_counts(self):
        experiment = Fig13MultiCore(core_counts=(1, 2), workloads=["array"])
        serial = experiment.run("quick", executor=SweepExecutor(workers=1))
        parallel = experiment.run("quick", executor=SweepExecutor(workers=4))
        assert serial.as_dict() == parallel.as_dict()

    def test_result_order_matches_job_order(self):
        jobs = small_jobs()
        results = SweepExecutor(workers=1).map_stats(jobs)
        for job, stats in zip(jobs, results):
            assert stats.design == job.design

    def test_execute_job_matches_direct_harness_run(self):
        job = small_jobs()[0]
        from repro.bench.harness import run_workload

        direct = run_workload(
            job.design, job.workload, config=job.config, params=job.params
        ).stats
        assert stats_to_dict(execute_job(job)) == stats_to_dict(direct)


class TestResultCache:
    def test_second_run_hits_cache_with_identical_values(self, tmp_path):
        jobs = small_jobs()
        cache = ResultCache(str(tmp_path))
        first_executor = SweepExecutor(workers=1, cache=cache)
        first = first_executor.map_stats(jobs)
        assert first_executor.cache_hits == 0
        assert first_executor.cache_misses == len(jobs)
        second_executor = SweepExecutor(workers=1, cache=cache)
        second = second_executor.map_stats(jobs)
        assert second_executor.cache_hits == len(jobs)
        assert second_executor.cache_misses == 0
        assert second_executor.jobs_executed == 0
        for left, right in zip(first, second):
            assert stats_to_dict(left) == stats_to_dict(right)

    def test_config_change_invalidates_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        base = SweepJob("sca", "array", config=fast_config(), params=PARAMS)
        executor = SweepExecutor(workers=1, cache=cache)
        executor.map_stats([base])
        changed_config = fast_config().with_nvm(t_wr_ns=150.0)
        changed = SweepJob("sca", "array", config=changed_config, params=PARAMS)
        assert job_cache_key(base) != job_cache_key(changed)
        second = SweepExecutor(workers=1, cache=cache)
        second.map_stats([changed])
        assert second.cache_hits == 0
        assert second.cache_misses == 1

    def test_params_change_invalidates_cache(self):
        base = SweepJob("sca", "array", config=fast_config(), params=PARAMS)
        other_params = dataclasses.replace(PARAMS, operations=13)
        other = SweepJob("sca", "array", config=fast_config(), params=other_params)
        assert job_cache_key(base) != job_cache_key(other)

    def test_same_job_same_key(self):
        left = SweepJob("sca", "array", config=fast_config(), params=PARAMS)
        right = SweepJob("sca", "array", config=fast_config(), params=PARAMS)
        assert job_cache_key(left) == job_cache_key(right)

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = SweepJob("sca", "array", config=fast_config(), params=PARAMS)
        key = job_cache_key(job)
        (tmp_path / (key + ".json")).write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None
        executor = SweepExecutor(workers=1, cache=cache)
        executor.map_stats([job])
        assert executor.cache_misses == 1
        assert cache.get(key) is not None  # rewritten with a good entry

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = SweepJob("sca", "array", config=fast_config(), params=PARAMS)
        SweepExecutor(workers=1, cache=cache).map_stats([job])
        assert cache.clear() == 1
        assert cache.get(job_cache_key(job)) is None


class TestStatsSerialization:
    def test_round_trip(self):
        stats = execute_job(small_jobs()[0])
        assert stats_to_dict(stats_from_dict(stats_to_dict(stats))) == stats_to_dict(stats)


class TestCliWiring:
    def test_workers_flag_accepted(self, tmp_path, capsys):
        from repro.bench.cli import main

        json_path = tmp_path / "out.json"
        code = main(
            [
                "table2",
                "--workers",
                "2",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--json",
                str(json_path),
            ]
        )
        assert code == 0
        assert json_path.exists()
