"""Timing-only mode: address/timing behaviour without byte movement.

The Figure 15 sweeps run with ``functional=False`` for speed; these
tests pin down that timing-only runs (a) work end to end, (b) agree
with functional runs on every timing-relevant statistic, and (c) skip
payload materialization.
"""

import pytest

from repro.bench.harness import build_traces, run_workload
from repro.config import KB, fast_config
from repro.sim.machine import Machine
from repro.workloads.base import WorkloadParams

PARAMS = WorkloadParams(operations=12, footprint_bytes=8 * KB)


class TestEndToEnd:
    @pytest.mark.parametrize("design", ["sca", "fca", "co-located-cc", "no-encryption"])
    def test_workloads_run_without_payloads(self, design):
        config = fast_config(functional=False)
        outcome = run_workload(design, "array", config=config, params=PARAMS)
        assert outcome.stats.runtime_ns > 0
        assert outcome.stats.transactions > 0

    def test_timing_matches_functional_exactly(self):
        """Byte movement must not influence timing: the same trace in
        functional and timing-only mode yields identical statistics."""
        functional_config = fast_config(functional=True)
        timing_config = fast_config(functional=False)
        functional = run_workload("sca", "hash", config=functional_config, params=PARAMS)
        timing = run_workload("sca", "hash", config=timing_config, params=PARAMS)
        assert timing.stats.runtime_ns == functional.stats.runtime_ns
        assert timing.stats.bytes_written == functional.stats.bytes_written
        assert timing.stats.bytes_read == functional.stats.bytes_read
        assert (
            timing.stats.counter_cache_miss_rate
            == functional.stats.counter_cache_miss_rate
        )

    def test_no_payloads_materialized(self):
        config = fast_config(functional=False)
        traces, _runs, _layout = build_traces("array", config, params=PARAMS)
        machine = Machine(config, "sca")
        result = machine.run(traces)
        # Device lines exist (for counter ground truth) but caches hold
        # no byte payloads.
        l1 = result.hierarchy.l1s[0]
        lines = [line for s in l1._sets for line in s.values()]
        assert lines
        assert all(line.payload is None for line in lines)

    def test_crash_reconstruction_still_tracks_counters(self):
        """Even without payloads, crash images preserve the
        counter-sync ground truth (Eq. 4 checks still work)."""
        from repro.core.invariants import check_counter_atomicity
        from repro.crash.injector import CrashInjector

        config = fast_config(functional=False)
        outcome = run_workload("fca", "array", config=config, params=PARAMS)
        injector = CrashInjector(outcome.result)
        image = injector.crash_at(outcome.stats.runtime_ns / 2)
        assert check_counter_atomicity(image.device, image.counter_store) == []
