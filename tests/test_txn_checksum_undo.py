"""Tests for the checksummed (single-CA-write) undo log variant."""

import pytest

from repro.bench.harness import run_workload
from repro.config import CACHE_LINE_SIZE, KB, fast_config
from repro.crash.checker import sweep_crash_points
from repro.crash.injector import CrashInjector
from repro.crash.recovery import RecoveryManager
from repro.errors import TransactionError
from repro.sim.machine import Machine
from repro.sim.trace import OpKind, TraceBuilder
from repro.txn.checksum_undo import (
    ChecksummedUndoLog,
    entry_checksum,
    recover_checksummed_undo,
)
from repro.txn.heap import MemoryLayout
from repro.workloads.base import WorkloadParams

OLD = bytes(64)
NEW = bytes([0xEE]) * 64
PARAMS = WorkloadParams(operations=8, footprint_bytes=8 * KB)


@pytest.fixture
def setup():
    config = fast_config()
    layout = MemoryLayout.build(config, log_capacity=16)
    builder = TraceBuilder("cksum")
    txns = ChecksummedUndoLog(builder, layout.arena(0))
    return config, layout, builder, txns


class TestChecksum:
    def test_deterministic(self):
        assert entry_checksum(0x40, 1, OLD) == entry_checksum(0x40, 1, OLD)

    def test_sensitive_to_every_field(self):
        base = entry_checksum(0x40, 1, OLD)
        assert entry_checksum(0x80, 1, OLD) != base
        assert entry_checksum(0x40, 2, OLD) != base
        assert entry_checksum(0x40, 1, NEW) != base

    def test_byte_flip_detected(self):
        tampered = bytes([1]) + OLD[1:]
        assert entry_checksum(0x40, 1, tampered) != entry_checksum(0x40, 1, OLD)


class TestProtocolShape:
    def test_exactly_one_counter_atomic_store_per_txn(self, setup):
        """The variant's selling point: half the CA writes of the
        standard undo protocol."""
        _config, layout, builder, txns = setup
        target = layout.arena(0).heap.alloc_lines(1)
        txns.run([(target, OLD, NEW)])
        ca_stores = [
            op for op in builder.build()
            if op.kind is OpKind.STORE and op.counter_atomic
        ]
        assert len(ca_stores) == 1

    def test_one_fewer_barrier_than_standard_undo(self, setup):
        from repro.txn.undolog import UndoLogTransactions

        config, layout, builder, txns = setup
        target = layout.arena(0).heap.alloc_lines(1)
        txns.run([(target, OLD, NEW)])
        checksum_fences = sum(
            1 for op in builder.build() if op.kind is OpKind.SFENCE
        )

        builder2 = TraceBuilder("std")
        layout2 = MemoryLayout.build(config, log_capacity=16)
        std = UndoLogTransactions(builder2, layout2.arena(0))
        target2 = layout2.arena(0).heap.alloc_lines(1)
        std.run([(target2, OLD, NEW)])
        std_fences = sum(1 for op in builder2.build() if op.kind is OpKind.SFENCE)

        assert checksum_fences == std_fences - 1

    def test_nesting_rejected(self, setup):
        _c, _l, _b, txns = setup
        txns.begin()
        with pytest.raises(TransactionError):
            txns.begin()

    def test_bad_line_rejected(self, setup):
        _c, _l, _b, txns = setup
        txns.begin()
        with pytest.raises(TransactionError):
            txns.write_line(0x1004, OLD, NEW)


class TestRecovery:
    def test_crash_sweep_every_workload(self):
        for workload in ("array", "queue", "btree"):
            outcome = run_workload(
                "sca", workload, mechanism="checksum-undo", params=PARAMS
            )
            report = sweep_crash_points(
                outcome.result, outcome.validator(0), max_points=60
            )
            failure = report.first_failure()
            assert report.all_consistent, (
                "%s first failure at %.1f: %s"
                % (workload, failure.crash_ns, failure.problems[:1])
            )

    def test_mid_prepare_crash_restores_nothing_harmful(self, setup):
        """Entries of the in-flight transaction with valid checksums
        restore pre-images identical to the live values (mutate has
        not run), so partial restores are harmless."""
        config, layout, builder, txns = setup
        target = layout.arena(0).heap.alloc_lines(1)
        txns.run([(target, OLD, NEW)])
        result = Machine(config, "sca").run([builder.build()])
        injector = CrashInjector(result)
        manager = RecoveryManager(config.encryption)
        for crash_ns in injector.interesting_times(limit=30):
            recovered = manager.recover(injector.crash_at(crash_ns))
            recover_checksummed_undo(recovered, layout.arena(0))
            value = recovered.read(target, CACHE_LINE_SIZE)
            assert value in (OLD, NEW)

    def test_stale_generation_entries_ignored(self, setup):
        """After two transactions, recovery of a crash inside txn 2
        must not replay txn 1's entries (seq filtering)."""
        config, layout, builder, txns = setup
        target = layout.arena(0).heap.alloc_lines(1)
        txns.run([(target, OLD, NEW)])
        txns.run([(target, NEW, OLD)])
        result = Machine(config, "sca").run([builder.build()])
        injector = CrashInjector(result)
        manager = RecoveryManager(config.encryption)
        end_of_first = result.txn_end_times[0][0]
        recovered = manager.recover(injector.crash_at(end_of_first + 0.5))
        restored = recover_checksummed_undo(recovered, layout.arena(0))
        # Crash landed between txns: nothing in flight (or txn 2's
        # prepare), never a replay of txn 1 backwards.
        assert recovered.read(target, CACHE_LINE_SIZE) in (NEW, OLD)
        if restored:
            assert recovered.read(target, CACHE_LINE_SIZE) == NEW


class TestPerformance:
    def test_cheaper_than_standard_undo(self):
        """One less barrier and one less CA pair per transaction should
        never make it slower."""
        standard = run_workload("sca", "array", mechanism="undo", params=PARAMS)
        checksummed = run_workload(
            "sca", "array", mechanism="checksum-undo", params=PARAMS
        )
        assert (
            checksummed.stats.runtime_ns <= standard.stats.runtime_ns * 1.02
        )
        assert (
            checksummed.result.controller.stats.paired_writes
            < standard.result.controller.stats.paired_writes
        )
