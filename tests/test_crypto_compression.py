"""Tests for counter-line compression (base + delta)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.compression import (
    CompressedCounterLine,
    compress_counter_line,
    compressed_size_bytes,
    decompress_counter_line,
    traffic_savings,
)
from repro.errors import CryptoError

CLUSTERED = (1000, 1001, 1002, 1000, 1003, 1001, 1004, 1002)
SPREAD = (1, 1 << 40, 7, 1 << 39, 2, 3, 4, 5)


class TestRoundTrip:
    def test_clustered_counters_round_trip(self):
        assert decompress_counter_line(compress_counter_line(CLUSTERED)) == CLUSTERED

    def test_spread_counters_round_trip(self):
        assert decompress_counter_line(compress_counter_line(SPREAD)) == SPREAD

    def test_all_equal_uses_one_byte_deltas(self):
        compressed = compress_counter_line((42,) * 8)
        assert compressed.delta_width == 1
        assert compressed.size_bytes == 1 + 8 + 8

    @given(st.lists(st.integers(0, 2**48 - 1), min_size=8, max_size=8))
    @settings(max_examples=100)
    def test_arbitrary_lines_round_trip(self, counters):
        line = tuple(counters)
        assert decompress_counter_line(compress_counter_line(line)) == line


class TestSizes:
    def test_clustered_compresses_well(self):
        assert compressed_size_bytes(CLUSTERED) == 17  # 1 + 8 + 8*1
        assert compressed_size_bytes(CLUSTERED) < 64

    def test_size_matches_payload(self):
        for line in (CLUSTERED, SPREAD, (0,) * 8):
            assert compress_counter_line(line).size_bytes == compressed_size_bytes(line)

    def test_width_grows_with_spread(self):
        narrow = compress_counter_line((0, 1, 2, 3, 4, 5, 6, 7))
        wide = compress_counter_line((0, 1 << 20, 0, 0, 0, 0, 0, 0))
        assert narrow.delta_width < wide.delta_width

    def test_worst_case_never_exceeds_73_bytes(self):
        # header + base + 8 * 8-byte deltas.
        assert compressed_size_bytes(SPREAD) <= 73


class TestSavings:
    def test_sequential_writes_save_most(self):
        """Counter lines from a streaming write burst (deltas 0-7)
        compress to about a quarter of their raw size."""
        lines = [tuple(range(base, base + 8)) for base in range(0, 800, 8)]
        assert traffic_savings(lines) > 0.7

    def test_empty_input(self):
        assert traffic_savings([]) == 0.0

    def test_savings_from_real_run(self):
        """Compression measured on the counter lines of an actual
        simulation's journal."""
        from repro.bench.harness import run_workload
        from repro.persist.journal import JournalKind
        from repro.workloads.base import WorkloadParams

        outcome = run_workload(
            "sca", "array", params=WorkloadParams(operations=15, footprint_bytes=8192)
        )
        lines = [
            record.counters
            for record in outcome.result.journal.records
            if record.kind is JournalKind.COUNTER and not record.single_slot
        ]
        assert lines, "run produced no counter-line writes"
        assert 0.0 < traffic_savings(lines) <= 1.0


class TestValidation:
    def test_wrong_arity_rejected(self):
        with pytest.raises(CryptoError):
            compress_counter_line((1, 2, 3))
        with pytest.raises(CryptoError):
            compressed_size_bytes((1, 2, 3))

    def test_negative_counter_rejected(self):
        with pytest.raises(CryptoError):
            compress_counter_line((-1, 0, 0, 0, 0, 0, 0, 0))

    def test_corrupt_payload_rejected(self):
        compressed = compress_counter_line(CLUSTERED)
        corrupt = CompressedCounterLine(
            base=compressed.base,
            delta_width=compressed.delta_width,
            payload=b"\x03" + compressed.payload[1:],
        )
        with pytest.raises(CryptoError):
            decompress_counter_line(corrupt)
