"""Property-based testing of the cache hierarchy against a flat model.

Random interleavings of loads, stores, clwbs and evictions-inducing
traffic must always read back the values a flat reference memory
predicts — across both cache levels and the encrypted NVM underneath.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import CACHE_LINE_SIZE, fast_config
from repro.core.designs import get_design
from repro.mem.controller import MemoryController
from repro.mem.hierarchy import CacheHierarchy

# Ops: (kind, line index, offset slot, value byte)
#   kind 0 = load, 1 = store, 2 = clwb.
OPS = st.lists(
    st.tuples(
        st.integers(0, 2),
        st.integers(0, 40),  # spans several cache sets to force evictions
        st.integers(0, 7),
        st.integers(0, 255),
    ),
    min_size=1,
    max_size=150,
)

BASE = 0x20000


def run_ops(ops, design="sca"):
    config = fast_config()
    controller = MemoryController(config, get_design(design))
    hierarchy = CacheHierarchy(config, controller)
    reference = {}
    clock = 0.0
    for kind, line_index, slot, value in ops:
        clock += 10.0
        address = BASE + line_index * CACHE_LINE_SIZE + slot * 8
        if kind == 0:
            access = hierarchy.load(0, address, 8, clock)
            expected = reference.get(address, bytes(8))
            assert access.data == expected, "load mismatch at 0x%x" % address
        elif kind == 1:
            payload = bytes([value]) * 8
            hierarchy.store(0, address, payload, 8, clock)
            reference[address] = payload
        else:
            hierarchy.clwb(0, address, clock)
    return hierarchy, reference


class TestHierarchyAgainstReference:
    @pytest.mark.parametrize("design", ["sca", "no-encryption"])
    @given(ops=OPS)
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_loads_always_see_reference_values(self, design, ops):
        run_ops(ops, design)  # assertions inside

    @given(ops=OPS)
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_read_current_agrees_everywhere(self, ops):
        hierarchy, reference = run_ops(ops)
        for address, expected in reference.items():
            assert hierarchy.read_current(0, address, 8) == expected

    @given(ops=OPS)
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_flush_all_then_invalidate_preserves_state(self, ops):
        """After flushing every dirty line and dropping the caches, the
        encrypted NVM alone reproduces the reference memory."""
        hierarchy, reference = run_ops(ops)
        hierarchy.flush_all_dirty(1e9)
        hierarchy.invalidate_all()
        for address, expected in reference.items():
            assert hierarchy.read_current(0, address, 8) == expected
