"""Tests for the five evaluation workloads and their infrastructure."""

import random

import pytest

from repro.config import CACHE_LINE_SIZE, KB, fast_config
from repro.errors import TransactionError
from repro.sim.trace import OpKind, TraceBuilder
from repro.txn.heap import MemoryLayout
from repro.txn.manager import make_transactions
from repro.workloads.base import LineModel, TxnRecorder, WorkloadParams
from repro.workloads.btree import BTreeWorkload
from repro.workloads.rbtree import RBTreeWorkload
from repro.workloads.registry import WORKLOADS, get_workload, list_workloads

PARAMS = WorkloadParams(operations=15, footprint_bytes=8 * KB)


def generate(name, params=PARAMS, mechanism="undo", cores=1, core=0):
    config = fast_config(num_cores=cores)
    layout = MemoryLayout.build(config, log_capacity=160)
    workload = get_workload(name, params)
    builder = TraceBuilder(name)
    txns = make_transactions(mechanism, builder, layout.arena(core))
    run = workload.generate(builder, txns, layout.arena(core), mechanism=mechanism)
    return workload, builder.build(), run


class TestLineModel:
    def test_u64_round_trip(self):
        model = LineModel()
        model.write_u64(0x48, 0xDEADBEEF)
        assert model.read_u64(0x48) == 0xDEADBEEF

    def test_untouched_reads_zero(self):
        assert LineModel().read_u64(0x1000) == 0

    def test_cross_line_bytes(self):
        model = LineModel()
        touched = model.write_bytes(0x3C, bytes(range(8)))
        assert touched == [0x0, 0x40]
        assert model.line(0x0)[60:] == bytes(range(4))
        assert model.line(0x40)[:4] == bytes(range(4, 8))

    def test_snapshot_is_immutable_copy(self):
        model = LineModel()
        model.write_u64(0, 1)
        snapshot = model.snapshot()
        model.write_u64(0, 2)
        assert snapshot[0][:8] == (1).to_bytes(8, "little")


class TestTxnRecorder:
    def _recorder(self):
        config = fast_config()
        layout = MemoryLayout.build(config, log_capacity=16)
        builder = TraceBuilder("r")
        txns = make_transactions("undo", builder, layout.arena(0))
        return TxnRecorder(builder, txns, LineModel()), builder, layout

    def test_write_outside_txn_rejected(self):
        recorder, _, _ = self._recorder()
        with pytest.raises(TransactionError):
            recorder.write_u64(0x1000, 1)

    def test_commit_records_pre_and_post_images(self):
        recorder, _, layout = self._recorder()
        target = layout.arena(0).heap.alloc_lines(1)
        recorder.begin()
        recorder.write_u64(target, 42)
        recorded = recorder.commit()
        assert len(recorded.writes) == 1
        line, old, new = recorded.writes[0]
        assert line == target
        assert old == bytes(64)
        assert new[:8] == (42).to_bytes(8, "little")

    def test_noop_writes_dropped(self):
        recorder, _, layout = self._recorder()
        target = layout.arena(0).heap.alloc_lines(1)
        recorder.begin()
        recorder.write_u64(target, 0)  # same as initial zero
        recorded = recorder.commit()
        assert recorded.writes == []

    def test_reads_emit_loads(self):
        recorder, builder, _ = self._recorder()
        recorder.read_u64(0x1000)
        assert any(op.kind is OpKind.LOAD for op in builder.build())


class TestRegistry:
    def test_five_workloads_in_paper_order(self):
        assert list_workloads() == ["array", "queue", "hash", "btree", "rbtree"]

    def test_unknown_rejected(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            get_workload("matrix-multiply")


class TestAllWorkloadsGenerate:
    @pytest.mark.parametrize("name", list(WORKLOADS))
    def test_generates_transactions_and_history(self, name):
        _workload, trace, run = generate(name)
        assert run.operations == PARAMS.operations
        assert trace.transactions() == len(run.history)
        assert len(run.history) > 0

    @pytest.mark.parametrize("name", list(WORKLOADS))
    def test_history_replay_matches_final_model(self, name):
        """Applying all recorded writes to zeroed memory reproduces the
        workload's own final model — the recording is complete."""
        _workload, _trace, run = generate(name)
        state = {}
        for txn in run.history:
            for line, _old, new in txn.writes:
                state[line] = new
        for line in run.final_model.touched_lines():
            assert state.get(line, bytes(64)) == run.final_model.line(line)

    @pytest.mark.parametrize("name", list(WORKLOADS))
    def test_pre_images_chain_correctly(self, name):
        """Every write's old value equals the previous state of the line."""
        _workload, _trace, run = generate(name)
        state = {}
        for txn in run.history:
            for line, old, new in txn.writes:
                assert state.get(line, bytes(64)) == old
                state[line] = new

    @pytest.mark.parametrize("name", list(WORKLOADS))
    def test_deterministic_given_seed(self, name):
        _w1, trace1, _r1 = generate(name)
        _w2, trace2, _r2 = generate(name)
        assert len(trace1) == len(trace2)
        assert [op.address for op in trace1] == [op.address for op in trace2]

    @pytest.mark.parametrize("name", list(WORKLOADS))
    def test_different_cores_use_disjoint_addresses(self, name):
        _w0, trace0, _ = generate(name, cores=2, core=0)
        _w1, trace1, _ = generate(name, cores=2, core=1)
        lines0 = {
            op.address // 64 for op in trace0 if op.kind in (OpKind.STORE, OpKind.LOAD)
        }
        lines1 = {
            op.address // 64 for op in trace1 if op.kind in (OpKind.STORE, OpKind.LOAD)
        }
        assert lines0.isdisjoint(lines1)

    @pytest.mark.parametrize("name", list(WORKLOADS))
    def test_redo_mechanism_also_works(self, name):
        _workload, trace, run = generate(name, mechanism="redo")
        assert run.mechanism == "redo"
        assert trace.transactions() == len(run.history)


class TestBatching:
    def test_ops_per_txn_groups_operations(self):
        batched = WorkloadParams(operations=12, footprint_bytes=8 * KB, ops_per_txn=4)
        _w, trace_batched, run_batched = generate("array", batched)
        _w, trace_single, run_single = generate("array")
        assert len(run_batched.history) < len(run_single.history)


class TestBTreeStructure:
    def test_inorder_keys_sorted(self):
        workload, _trace, _run = generate("btree", WorkloadParams(operations=60, footprint_bytes=8 * KB))
        keys = workload.inorder_keys()
        assert keys == sorted(keys)
        assert len(keys) >= 60

    def test_splits_occur(self):
        workload, _trace, _run = generate("btree", WorkloadParams(operations=60, footprint_bytes=8 * KB))
        root = workload._nodes[workload.root_address]
        assert not root.is_leaf  # the tree grew beyond one node


class TestRBTreeStructure:
    def test_invariants_hold_after_many_inserts(self):
        workload, _trace, _run = generate(
            "rbtree", WorkloadParams(operations=80, footprint_bytes=8 * KB)
        )
        workload.check_invariants()

    def test_inorder_sorted(self):
        workload, _trace, _run = generate(
            "rbtree", WorkloadParams(operations=50, footprint_bytes=8 * KB)
        )
        keys = workload.inorder_keys()
        assert keys == sorted(keys)


class TestQueueBehaviour:
    def test_counter_atomic_meta_traffic(self):
        """Queue transactions always touch the meta line, giving it the
        high commit-record traffic §6.3.2 calls out."""
        _workload, trace, run = generate("queue")
        ca_stores = [
            op for op in trace if op.kind is OpKind.STORE and op.counter_atomic
        ]
        assert len(ca_stores) == 2 * len(run.history)


class TestHashTable:
    def test_unique_keys_inserted(self):
        workload, _trace, run = generate(
            "hash", WorkloadParams(operations=30, footprint_bytes=8 * KB)
        )
        inserted_pairs = set()
        for txn in run.history:
            for line, _old, new in txn.writes:
                inserted_pairs.add((line, new))
        assert workload._occupancy == 30
