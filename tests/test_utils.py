"""Tests for the utility helpers (bitops, stats, tables)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AlignmentError
from repro.utils.bitops import (
    align_down,
    align_up,
    bytes_to_u64,
    is_aligned,
    is_power_of_two,
    log2_int,
    require_aligned,
    rotl64,
    rotr64,
    u64_to_bytes,
    xor_bytes,
)
from repro.utils.stats import Counter, Histogram, RunningMean, geometric_mean, weighted_mean
from repro.utils.tables import format_table


class TestBitops:
    def test_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(64)
        assert not is_power_of_two(0)
        assert not is_power_of_two(48)

    def test_log2(self):
        assert log2_int(64) == 6
        with pytest.raises(ValueError):
            log2_int(63)

    @given(st.integers(min_value=0, max_value=2**40))
    @settings(max_examples=100)
    def test_align_invariants(self, address):
        down = align_down(address, 64)
        up = align_up(address, 64)
        assert down <= address <= up
        assert down % 64 == 0 and up % 64 == 0
        assert up - down in (0, 64)

    def test_is_aligned(self):
        assert is_aligned(128, 64)
        assert not is_aligned(129, 64)

    def test_require_aligned_raises(self):
        with pytest.raises(AlignmentError):
            require_aligned(7, 8)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    @settings(max_examples=100)
    def test_u64_round_trip(self, value):
        assert bytes_to_u64(u64_to_bytes(value)) == value

    @given(st.integers(min_value=0, max_value=2**64 - 1), st.integers(0, 63))
    @settings(max_examples=100)
    def test_rotation_inverse(self, value, amount):
        assert rotr64(rotl64(value, amount), amount) == value

    def test_xor_bytes(self):
        assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"
        with pytest.raises(ValueError):
            xor_bytes(b"\x00", b"\x00\x00")


class TestCounter:
    def test_accumulates(self):
        counter = Counter("x")
        counter.add()
        counter.add(4)
        assert int(counter) == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").add(-1)

    def test_reset(self):
        counter = Counter("x")
        counter.add(3)
        counter.reset()
        assert int(counter) == 0


class TestRunningMean:
    def test_mean_and_extremes(self):
        mean = RunningMean()
        for value in (1.0, 2.0, 3.0):
            mean.add(value)
        assert mean.mean == pytest.approx(2.0)
        assert mean.minimum == 1.0
        assert mean.maximum == 3.0

    def test_variance_matches_reference(self):
        values = [3.0, 7.0, 7.0, 19.0]
        mean = RunningMean()
        for value in values:
            mean.add(value)
        reference = sum((v - 9.0) ** 2 for v in values) / 3
        assert mean.variance == pytest.approx(reference)

    def test_merge_equals_sequential(self):
        left, right, combined = RunningMean(), RunningMean(), RunningMean()
        for i, value in enumerate([1.0, 5.0, 2.0, 8.0, 3.0]):
            (left if i % 2 else right).add(value)
            combined.add(value)
        left.merge(right)
        assert left.mean == pytest.approx(combined.mean)
        assert left.variance == pytest.approx(combined.variance)

    def test_empty(self):
        assert RunningMean().mean == 0.0
        assert RunningMean().variance == 0.0


class TestHistogram:
    def test_bucketing(self):
        histogram = Histogram([10, 100])
        for value in (5, 50, 500):
            histogram.add(value)
        assert histogram.buckets == [1, 1, 1]

    def test_fraction(self):
        histogram = Histogram([10, 100])
        for value in (1, 2, 200):
            histogram.add(value)
        assert histogram.fraction_at_or_below(10) == pytest.approx(2 / 3)

    def test_as_dict_labels(self):
        histogram = Histogram([10])
        histogram.add(1)
        assert set(histogram.as_dict()) == {"<=10", ">10"}

    def test_empty_edges_rejected(self):
        with pytest.raises(ValueError):
            Histogram([])


class TestMeans:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_weighted_mean(self):
        assert weighted_mean([(1.0, 1.0), (3.0, 3.0)]) == pytest.approx(2.5)

    def test_weighted_mean_zero_weight_rejected(self):
        with pytest.raises(ValueError):
            weighted_mean([(1.0, 0.0)])


class TestTables:
    def test_renders_headers_and_rows(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 2]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "1.500" in text
        assert "bb" in text

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])
