"""Tests for the set-associative cache level (functional + metadata)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CACHE_LINE_SIZE, CacheConfig
from repro.errors import AddressError
from repro.mem.cache import Cache

SMALL = CacheConfig(size_bytes=4 * 1024, ways=4, hit_latency_ns=1.0)
LINE = bytes(range(64))


@pytest.fixture
def cache():
    return Cache(SMALL, functional=True, name="test")


class TestFillAndRead:
    def test_miss_then_hit(self, cache):
        assert cache.read(0x40, 8) is None
        cache.fill(0x40, LINE)
        data, _line = cache.read(0x40, 8)
        assert data == LINE[:8]

    def test_offset_reads(self, cache):
        cache.fill(0x40, LINE)
        data, _ = cache.read(0x48, 4)
        assert data == LINE[8:12]

    def test_stats_track_hits_and_misses(self, cache):
        cache.read(0x40, 8)
        cache.fill(0x40, LINE)
        cache.read(0x40, 8)
        assert cache.stats.read_misses == 1
        assert cache.stats.read_hits == 1
        assert cache.stats.miss_rate == pytest.approx(0.5)


class TestWrites:
    def test_write_miss_returns_false(self, cache):
        assert cache.write(0x40, b"12345678", 8) is False

    def test_write_hit_mutates_line(self, cache):
        cache.fill(0x40, LINE)
        cache.write(0x40, b"\xff" * 8, 8)
        data, _ = cache.read(0x40, 8)
        assert data == b"\xff" * 8

    def test_write_sets_dirty(self, cache):
        cache.fill(0x40, LINE)
        cache.write(0x40, b"\xff" * 8, 8)
        assert cache.peek(0x40).dirty

    def test_counter_atomic_flag_sticks(self, cache):
        """Section 5.1: the CounterAtomic annotation rides with the line
        until it is written back."""
        cache.fill(0x40, LINE)
        cache.write(0x40, b"\x01" * 8, 8, counter_atomic=True)
        cache.write(0x48, b"\x02" * 8, 8, counter_atomic=False)
        assert cache.peek(0x40).counter_atomic


class TestClwb:
    def test_clean_line_cleans_without_invalidating(self, cache):
        cache.fill(0x40, LINE)
        cache.write(0x40, b"\xff" * 8, 8, counter_atomic=True)
        flushed = cache.clean_line(0x40)
        assert flushed is not None
        assert flushed.counter_atomic is True
        assert flushed.payload[:8] == b"\xff" * 8
        assert cache.contains(0x40)
        assert not cache.peek(0x40).dirty
        assert not cache.peek(0x40).counter_atomic

    def test_clean_of_clean_line_is_noop(self, cache):
        cache.fill(0x40, LINE)
        assert cache.clean_line(0x40) is None

    def test_clean_of_absent_line_is_noop(self, cache):
        assert cache.clean_line(0x40) is None


class TestEviction:
    def _colliding(self, cache, count):
        stride = cache.num_sets * CACHE_LINE_SIZE
        return [way * stride for way in range(count)]

    def test_lru_victim_selected(self, cache):
        addresses = self._colliding(cache, cache.ways + 1)
        for address in addresses[:-1]:
            cache.fill(address, LINE, dirty=True)
        cache.read(addresses[0], 8)  # refresh way 0
        victim = cache.fill(addresses[-1], LINE)
        assert victim.address == addresses[1]

    def test_clean_victim_dropped_but_counted(self, cache):
        addresses = self._colliding(cache, cache.ways + 1)
        for address in addresses[:-1]:
            cache.fill(address, LINE)
        assert cache.fill(addresses[-1], LINE) is None
        assert cache.stats.evictions == 1
        assert cache.stats.dirty_evictions == 0

    def test_dirty_victim_carries_payload_and_flag(self, cache):
        addresses = self._colliding(cache, cache.ways + 1)
        cache.fill(addresses[0], LINE)
        cache.write(addresses[0], b"\xee" * 8, 8, counter_atomic=True)
        for address in addresses[1:-1]:
            cache.fill(address, LINE)
        victim = cache.fill(addresses[-1], LINE)
        assert victim.dirty
        assert victim.counter_atomic
        assert victim.payload[:8] == b"\xee" * 8

    def test_refill_merges_instead_of_evicting(self, cache):
        cache.fill(0x40, LINE)
        cache.write(0x40, b"\xaa" * 8, 8)
        assert cache.fill(0x40, None) is None
        # Dirty data survives a redundant fill.
        data, _ = cache.read(0x40, 8)
        assert data == b"\xaa" * 8

    def test_invalidate_all(self, cache):
        cache.fill(0x40, LINE)
        cache.invalidate_all()
        assert cache.occupancy() == 0


class TestBoundsChecking:
    def test_read_crossing_line_rejected(self, cache):
        cache.fill(0x40, LINE)
        with pytest.raises(AddressError):
            cache.peek(0x40).read_bytes(60, 8)

    def test_write_crossing_line_rejected(self, cache):
        cache.fill(0x40, LINE)
        with pytest.raises(AddressError):
            cache.peek(0x40).write_bytes(60, b"12345678")


class TestTimingOnlyMode:
    def test_tag_behavior_matches_without_payloads(self):
        cache = Cache(SMALL, functional=False)
        cache.fill(0x40, None)
        data, line = cache.read(0x40, 8)
        assert data is None
        assert cache.write(0x40, None, 8) is True
        assert cache.peek(0x40).dirty

    def test_dirty_eviction_without_payload(self):
        cache = Cache(SMALL, functional=False)
        stride = cache.num_sets * CACHE_LINE_SIZE
        cache.fill(0, None)
        cache.write(0, None, 8)
        for way in range(1, cache.ways + 1):
            cache.fill(way * stride, None)
        assert cache.stats.dirty_evictions == 1


class TestProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 255), st.booleans()),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_contents_match_reference_model(self, ops):
        """Functional cache reads always reflect the latest fill/write."""
        cache = Cache(SMALL, functional=True)
        reference = {}
        for line_index, is_write in ops:
            address = line_index * CACHE_LINE_SIZE
            if is_write and cache.contains(address):
                payload = bytes([line_index % 256]) * 8
                cache.write(address, payload, 8)
                reference[address] = payload
            elif not cache.contains(address):
                # A (re)fill installs fresh contents; any earlier dirty
                # data for this line was lost with its eviction.
                payload = bytes([(line_index * 7) % 256]) * CACHE_LINE_SIZE
                cache.fill(address, payload)
                reference[address] = payload[:8]
        for address, expected in reference.items():
            hit = cache.read(address, 8)
            if hit is not None and hit[0] is not None:
                assert hit[0] == expected[:8]
