"""Tests for Osiris-style counter recovery over crash images."""

import pytest

from repro.config import KB, EncryptionConfig, fast_config
from repro.bench.harness import run_workload
from repro.crash.counter_recovery import CounterRecoverer, collect_tags
from repro.crash.injector import CrashInjector
from repro.crash.recovery import RecoveryManager
from repro.crypto.integrity import TaggedLine
from repro.crypto.otp import OTPCipher, make_block_cipher
from repro.sim.machine import Machine
from repro.sim.trace import TraceBuilder
from repro.workloads.base import WorkloadParams

LINE = bytes(i % 256 for i in range(64))


class TestRecoverLine:
    def _tagged(self, recoverer, address, counter):
        cipher = OTPCipher(make_block_cipher(EncryptionConfig()))
        ciphertext = cipher.encrypt(address, counter, LINE)
        tag = recoverer.make_tag(address, counter, ciphertext)
        return TaggedLine(address=address, ciphertext=ciphertext, tag=tag)

    def test_exact_counter_found_first(self):
        recoverer = CounterRecoverer(EncryptionConfig(), max_lag=8)
        line = self._tagged(recoverer, 0x40, 100)
        assert recoverer.recover_line(line, 100) == 100

    def test_lagging_counter_recovered_within_bound(self):
        recoverer = CounterRecoverer(EncryptionConfig(), max_lag=8)
        line = self._tagged(recoverer, 0x40, 100)
        assert recoverer.recover_line(line, 95) == 100

    def test_lag_beyond_bound_unrecoverable(self):
        recoverer = CounterRecoverer(EncryptionConfig(), max_lag=4)
        line = self._tagged(recoverer, 0x40, 100)
        assert recoverer.recover_line(line, 90) is None

    def test_counter_ahead_of_truth_unrecoverable(self):
        """Search only looks forward: counters never regress."""
        recoverer = CounterRecoverer(EncryptionConfig(), max_lag=8)
        line = self._tagged(recoverer, 0x40, 100)
        assert recoverer.recover_line(line, 103) is None

    def test_bad_lag_rejected(self):
        with pytest.raises(ValueError):
            CounterRecoverer(EncryptionConfig(), max_lag=0)


class TestImageRecovery:
    def _crash_image(self, design, fraction=0.6):
        builder = TraceBuilder("t")
        for i in range(6):
            builder.store_u64(0x1000 + i * 64, i + 1)
            builder.clwb(0x1000 + i * 64)
        builder.ccwb(0x1000)
        builder.persist_barrier()
        result = Machine(fast_config(), design).run([builder.build()])
        injector = CrashInjector(result)
        crash_ns = result.stats.runtime_ns * fraction
        return result, injector.crash_at(crash_ns)

    def test_consistent_image_needs_no_recovery(self):
        result, image = self._crash_image("sca", fraction=2.0)
        recoverer = CounterRecoverer(result.config.encryption)
        report = recoverer.recover_image(image)
        assert report.unrecoverable == 0
        assert report.recovered == 0
        assert report.already_consistent == report.lines_checked

    def test_unsafe_image_recovered_by_search(self):
        """The headline extension result: crash states the unsafe
        design cannot decrypt become fully decryptable with tags +
        bounded counter search."""
        result, image = self._crash_image("unsafe", fraction=2.0)
        manager = RecoveryManager(result.config.encryption)
        before = manager.recover(image)
        assert before.garbage_lines, "expected undecryptable lines"

        recoverer = CounterRecoverer(result.config.encryption, max_lag=64)
        report = recoverer.recover_image(image)
        assert report.recovered == len(before.garbage_lines)
        assert report.unrecoverable == 0

        after = manager.recover(image)
        assert not after.garbage_lines
        assert after.read_u64(0x1000) == 1

    def test_report_accounting(self):
        result, image = self._crash_image("unsafe", fraction=2.0)
        recoverer = CounterRecoverer(result.config.encryption, max_lag=64)
        report = recoverer.recover_image(image)
        assert report.lines_checked == (
            report.already_consistent + report.recovered + report.unrecoverable
        )
        assert 0.0 <= report.recovery_rate <= 1.0
        assert report.candidates_tried >= report.recovered

    def test_workload_scale_recovery(self):
        params = WorkloadParams(operations=8, footprint_bytes=8 * KB)
        outcome = run_workload("unsafe", "array", params=params)
        injector = CrashInjector(outcome.result)
        image = injector.crash_at(outcome.stats.runtime_ns + 1e9)
        recoverer = CounterRecoverer(outcome.result.config.encryption, max_lag=512)
        report = recoverer.recover_image(image)
        assert report.recovery_rate == 1.0
