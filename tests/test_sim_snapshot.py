"""Checkpoint/restore: snapshot format safety, store recovery, and the
bit-identical resume guarantee across all four transaction mechanisms."""

import os
import pickle
import struct

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.bench.harness import build_traces
from repro.config import CACHE_LINE_SIZE, fast_config
from repro.errors import SnapshotCorruptError, SnapshotError, SnapshotVersionError
from repro.sim.machine import Machine
from repro.sim.snapshot import (
    FORMAT_VERSION,
    MAGIC,
    CheckpointPolicy,
    SnapshotStore,
    read_snapshot,
    result_fingerprint,
    run_with_checkpoints,
    write_snapshot,
)
from repro.sim.trace import TraceBuilder
from repro.txn.heap import MemoryLayout
from repro.txn.shadow import ShadowTransactions
from repro.workloads.base import WorkloadParams

#: Every transaction mechanism the repo implements.  The first three go
#: through the workload harness; shadow is builder-level (see
#: tests/test_txn_shadow.py) so its traces are hand-assembled here.
MECHANISMS = ("undo", "redo", "checksum-undo", "shadow")


def make_config():
    return fast_config(num_cores=2, functional=True)


def make_traces(config, mechanism, operations=5, seed=11):
    if mechanism != "shadow":
        traces, _runs, _layout = build_traces(
            "hash",
            config,
            mechanism,
            WorkloadParams(operations=operations, seed=seed),
        )
        return traces
    layout = MemoryLayout.build(config, log_capacity=8)
    traces = []
    for core in range(config.num_cores):
        builder = TraceBuilder("shadow-core%d" % core)
        txns = ShadowTransactions(
            builder, layout.arena(core), region_bytes=4 * CACHE_LINE_SIZE
        )
        for version in range(operations):
            fill = (seed * 31 + core * 17 + version * 7) % 255 + 1
            offset = ((seed + version) % 4) * CACHE_LINE_SIZE
            txns.commit_new_version([(offset, bytes([fill]) * CACHE_LINE_SIZE)])
        traces.append(builder.build())
    return traces


class TestResumeDeterminism:
    """The tentpole guarantee: checkpoint at *any* event boundary,
    serialize, restore into a fresh machine, and the finished result is
    bit-identical (exact floats, final image, journal) to the
    uninterrupted run."""

    @pytest.mark.parametrize("mechanism", MECHANISMS)
    @given(data=st.data())
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_resume_from_any_cut_is_bit_identical(self, mechanism, data):
        seed = data.draw(st.integers(min_value=0, max_value=999), label="seed")
        design = data.draw(
            st.sampled_from(
                ("sca", "co-located-cc", "no-encryption", "sca+bmt", "fca+bmt")
            ),
            label="design",
        )
        config = make_config()
        traces = make_traces(config, mechanism, seed=seed)
        baseline = Machine(config, design)
        expected = result_fingerprint(baseline.run(traces))
        total = baseline.events_executed
        assume(total >= 2)
        cut = data.draw(st.integers(min_value=1, max_value=total - 1), label="cut")
        machine = Machine(config, design)
        machine.begin(traces)
        for _ in range(cut):
            machine.step()
        # Round-trip through real serialization, as a snapshot file would.
        blob = pickle.dumps(machine.get_state(), protocol=4)
        resumed = Machine.from_state(pickle.loads(blob))
        while resumed.step():
            pass
        assert result_fingerprint(resumed.finish()) == expected

    @pytest.mark.parametrize("mechanism", MECHANISMS)
    def test_store_roundtrip_per_mechanism(self, mechanism, tmp_path):
        """File-level roundtrip: snapshot mid-run to disk, resume via
        run_with_checkpoints, compare fingerprints."""
        config = make_config()
        traces = make_traces(config, mechanism)
        baseline = Machine(config, "sca")
        expected = result_fingerprint(baseline.run(traces))
        cut = baseline.events_executed // 2
        assert cut >= 1
        partial = Machine(config, "sca")
        partial.begin(traces)
        for _ in range(cut):
            partial.step()
        store = SnapshotStore(str(tmp_path), code="c1")
        store.save(partial.get_state())
        resumed = Machine(config, "sca")
        result, stats = run_with_checkpoints(resumed, traces, store=store)
        assert stats["restored"] == 1
        assert stats["restored_events"] == cut
        assert result_fingerprint(result) == expected


class TestSnapshotFile:
    def test_roundtrip_preserves_state_and_header(self, tmp_path):
        path = str(tmp_path / "snap.ckpt")
        state = {"answer": 42, "payload": bytes(range(16))}
        write_snapshot(path, state, code="abc123", meta={"events": 7})
        loaded, header = read_snapshot(path, expected_code="abc123")
        assert loaded == state
        assert header["code"] == "abc123"
        assert header["meta"] == {"events": 7}
        assert header["format"] == FORMAT_VERSION

    def test_publish_is_atomic_no_tmp_left(self, tmp_path):
        path = str(tmp_path / "snap.ckpt")
        write_snapshot(path, {"n": 1})
        assert os.listdir(str(tmp_path)) == ["snap.ckpt"]

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "junk.ckpt")
        with open(path, "wb") as handle:
            handle.write(b"not a snapshot at all")
        with pytest.raises(SnapshotCorruptError):
            read_snapshot(path)

    def test_every_truncation_point_is_detected(self, tmp_path):
        """A torn write (file cut at any byte) must never restore."""
        path = str(tmp_path / "snap.ckpt")
        write_snapshot(path, {"k": list(range(64))})
        with open(path, "rb") as handle:
            blob = handle.read()
        torn = str(tmp_path / "torn.ckpt")
        for length in range(0, len(blob), max(1, len(blob) // 9)):
            with open(torn, "wb") as handle:
                handle.write(blob[:length])
            with pytest.raises(SnapshotCorruptError):
                read_snapshot(torn)

    def test_body_bitflip_fails_checksum(self, tmp_path):
        path = str(tmp_path / "snap.ckpt")
        write_snapshot(path, {"k": "v"})
        with open(path, "rb") as handle:
            blob = bytearray(handle.read())
        blob[-1] ^= 0x40
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        with pytest.raises(SnapshotCorruptError):
            read_snapshot(path)

    def test_code_mismatch_is_a_version_error(self, tmp_path):
        path = str(tmp_path / "snap.ckpt")
        write_snapshot(path, {"k": "v"}, code="old-code")
        with pytest.raises(SnapshotVersionError):
            read_snapshot(path, expected_code="new-code")
        # Without an expectation the same file loads fine.
        state, _header = read_snapshot(path)
        assert state == {"k": "v"}

    def test_unknown_container_format_rejected(self, tmp_path):
        path = str(tmp_path / "future.ckpt")
        header = b'{"format": 999, "code": "", "crc": 0, "body_bytes": 0, "meta": {}}'
        with open(path, "wb") as handle:
            handle.write(MAGIC)
            handle.write(struct.pack(">I", len(header)))
            handle.write(header)
        with pytest.raises(SnapshotVersionError):
            read_snapshot(path)


class TestSnapshotStore:
    def test_generations_increment_and_prune_to_keep(self, tmp_path):
        store = SnapshotStore(str(tmp_path), keep=2)
        for n in range(4):
            store.save({"n": n})
        assert store.generations() == [2, 3]
        state, _header = store.load_latest()
        assert state == {"n": 3}
        assert store.saved == 4

    def test_falls_back_past_torn_generation(self, tmp_path):
        store = SnapshotStore(str(tmp_path), keep=3)
        store.save({"n": 0})
        newest = store.save({"n": 1})
        with open(newest, "rb") as handle:
            blob = handle.read()
        with open(newest, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        state, _header = store.load_latest()
        assert state == {"n": 0}
        assert store.quarantined == 1
        assert os.path.exists(newest + ".corrupt")
        assert not os.path.exists(newest)

    def test_quarantine_files_survive_pruning(self, tmp_path):
        store = SnapshotStore(str(tmp_path), keep=1)
        doomed = store.save({"n": 0})
        with open(doomed, "ab") as handle:
            handle.write(b"trailing garbage")
        assert store.load_latest() is None
        for n in range(1, 4):
            store.save({"n": n})
        assert os.path.exists(doomed + ".corrupt")

    def test_stale_code_generations_invalidated(self, tmp_path):
        writer = SnapshotStore(str(tmp_path), code="rev-a")
        writer.save({"n": 0})
        writer.save({"n": 1})
        reader = SnapshotStore(str(tmp_path), code="rev-b")
        assert reader.load_latest() is None
        assert reader.invalidated == 2
        assert reader.generations() == []

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(SnapshotError):
            SnapshotStore(str(tmp_path), keep=0)


class TestRunWithCheckpoints:
    def _base(self):
        config = make_config()
        traces = make_traces(config, "undo")
        baseline = Machine(config, "sca")
        expected = result_fingerprint(baseline.run(traces))
        return config, traces, expected, baseline.events_executed

    def test_event_cadence_saves_snapshots(self, tmp_path):
        config, traces, expected, total = self._base()
        store = SnapshotStore(str(tmp_path), code="c1")
        result, stats = run_with_checkpoints(
            Machine(config, "sca"),
            traces,
            store=store,
            policy=CheckpointPolicy(every_events=max(1, total // 5)),
        )
        assert result_fingerprint(result) == expected
        assert stats["saved"] >= 3
        assert stats["restored"] == 0
        assert store.generations()  # snapshots actually landed on disk

    def test_resume_false_starts_fresh(self, tmp_path):
        config, traces, expected, total = self._base()
        store = SnapshotStore(str(tmp_path), code="c1")
        partial = Machine(config, "sca")
        partial.begin(traces)
        for _ in range(total // 2):
            partial.step()
        store.save(partial.get_state())
        result, stats = run_with_checkpoints(
            Machine(config, "sca"), traces, store=store, resume=False
        )
        assert stats["restored"] == 0
        assert result_fingerprint(result) == expected

    def test_torn_newest_generation_falls_back_then_matches(self, tmp_path):
        """The acceptance scenario: newest snapshot torn mid-write,
        recovery quarantines it, resumes one generation back, and still
        reproduces the uninterrupted result bit-for-bit."""
        config, traces, expected, total = self._base()
        store = SnapshotStore(str(tmp_path), code="c1")
        cuts = (total // 3, 2 * total // 3)
        machine = Machine(config, "sca")
        machine.begin(traces)
        done = 0
        for cut in cuts:
            while done < cut:
                machine.step()
                done += 1
            store.save(machine.get_state())
        newest = store._path(store.generations()[-1])
        with open(newest, "rb") as handle:
            blob = handle.read()
        with open(newest, "wb") as handle:
            handle.write(blob[: len(blob) // 3])
        result, stats = run_with_checkpoints(
            Machine(config, "sca"), traces, store=store
        )
        assert stats["restored"] == 1
        assert stats["restored_events"] == cuts[0]
        assert stats["quarantined"] == 1
        assert os.path.exists(newest + ".corrupt")
        assert result_fingerprint(result) == expected

    def test_all_generations_bad_restarts_from_zero(self, tmp_path):
        config, traces, expected, total = self._base()
        store = SnapshotStore(str(tmp_path), code="c1")
        partial = Machine(config, "sca")
        partial.begin(traces)
        for _ in range(total // 2):
            partial.step()
        path = store.save(partial.get_state())
        with open(path, "wb") as handle:
            handle.write(b"shredded")
        result, stats = run_with_checkpoints(
            Machine(config, "sca"), traces, store=store
        )
        assert stats["restored"] == 0
        assert stats["quarantined"] == 1
        assert result_fingerprint(result) == expected

    def test_policy_validation(self):
        with pytest.raises(SnapshotError):
            CheckpointPolicy(every_events=0)
        with pytest.raises(SnapshotError):
            CheckpointPolicy(every_seconds=0.0)
        assert not CheckpointPolicy().enabled
        assert CheckpointPolicy(every_events=10).enabled

    def test_on_event_sees_every_event(self):
        config, traces, _expected, total = self._base()
        counts = []
        run_with_checkpoints(
            Machine(config, "sca"), traces, on_event=counts.append
        )
        assert len(counts) == total
        assert counts[-1] == total
