"""Tests for trace serialization (save/load round trips)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.sim.trace import Op, OpKind, Trace, TraceBuilder
from repro.sim.tracefile import (
    dumps_trace,
    load_traces,
    loads_trace,
    save_traces,
)


def sample_trace(name="sample"):
    builder = TraceBuilder(name)
    builder.txn_begin("t1")
    builder.store(0x1000, bytes(range(8)), counter_atomic=True)
    builder.store_u64(0x1040, 7)
    builder.load(0x1000, 8)
    builder.clwb(0x1000)
    builder.ccwb(0x1000)
    builder.compute(12.5)
    builder.label("a label")
    builder.persist_barrier()
    builder.txn_end("t1")
    return builder.build()


class TestRoundTrip:
    def test_string_round_trip_preserves_everything(self):
        original = sample_trace()
        restored = loads_trace(dumps_trace(original))
        assert restored.name == original.name
        assert len(restored) == len(original)
        for a, b in zip(original.ops, restored.ops):
            assert a.kind == b.kind
            assert a.address == b.address
            assert a.length == b.length
            assert a.data == b.data
            assert a.counter_atomic == b.counter_atomic
            assert a.duration_ns == b.duration_ns
            assert a.note == b.note

    def test_timing_only_store_round_trips(self):
        trace = Trace(ops=[Op(kind=OpKind.STORE, address=0x40, length=16)])
        restored = loads_trace(dumps_trace(trace))
        assert restored.ops[0].data is None
        assert restored.ops[0].length == 16

    def test_replay_produces_identical_simulation(self):
        """A round-tripped trace simulates byte-for-byte identically."""
        from repro.config import fast_config
        from repro.sim.machine import Machine

        original = sample_trace()
        restored = loads_trace(dumps_trace(original))
        first = Machine(fast_config(), "sca").run([original])
        second = Machine(fast_config(), "sca").run([restored])
        assert first.stats.runtime_ns == second.stats.runtime_ns
        assert first.stats.bytes_written == second.stats.bytes_written


class TestFileFormat:
    def test_comments_and_blank_lines_ignored(self):
        text = "# a comment\n\nS\n  \nR 0x40 8\n"
        trace = loads_trace(text)
        assert [op.kind for op in trace] == [OpKind.SFENCE, OpKind.LOAD]

    def test_name_parsed_from_header(self):
        trace = loads_trace("# trace: my-name\nS\n")
        assert trace.name == "my-name"

    def test_bad_opcode_raises(self):
        with pytest.raises(TraceError):
            loads_trace("X 0x40\n")

    def test_bad_field_raises_with_line_number(self):
        with pytest.raises(TraceError) as exc_info:
            loads_trace("S\nR zzz 8\n")
        assert "line 2" in str(exc_info.value)


class TestMultiTraceFiles:
    def test_save_load_traces(self, tmp_path):
        path = str(tmp_path / "traces.txt")
        traces = [sample_trace("a"), sample_trace("b")]
        save_traces(traces, path)
        restored = load_traces(path)
        assert len(restored) == 2
        assert restored[0].name == "a"
        assert restored[1].name == "b"
        assert len(restored[0]) == len(traces[0])


class TestProperties:
    @given(
        st.lists(
            st.one_of(
                st.builds(
                    lambda a, l: Op(kind=OpKind.LOAD, address=a * 8, length=l),
                    st.integers(0, 1 << 20),
                    st.integers(1, 64),
                ),
                st.builds(
                    lambda a, ca: Op(
                        kind=OpKind.STORE,
                        address=a * 8,
                        length=8,
                        data=bytes(range(8)),
                        counter_atomic=ca,
                    ),
                    st.integers(0, 1 << 20),
                    st.booleans(),
                ),
                st.just(Op(kind=OpKind.SFENCE)),
                st.builds(
                    lambda d: Op(kind=OpKind.COMPUTE, duration_ns=d),
                    st.floats(min_value=0, max_value=1e6, allow_nan=False),
                ),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_arbitrary_traces_round_trip(self, ops):
        trace = Trace(ops=ops, name="prop")
        restored = loads_trace(dumps_trace(trace))
        assert len(restored) == len(trace)
        for a, b in zip(trace.ops, restored.ops):
            assert (a.kind, a.address, a.length, a.data, a.counter_atomic) == (
                b.kind,
                b.address,
                b.length,
                b.data,
                b.counter_atomic,
            )
