"""Batched crypto paths are bit-identical to their scalar oracles.

PR6 vectorizes the AES T-table rounds, the OTP pad XOR and the
counter-cache probes over whole batches (numpy when available, with the
scalar implementations retained as oracles).  These properties pin the
equivalence contract from docs/performance.md: same bytes, same stats,
same LRU state — for every batch size including 0 and 1 — and the
fast-forward simulation path reproduces the step-by-step fingerprint.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import build_traces
from repro.config import fast_config
from repro.crypto.aes import _NP_BATCH_MIN, AES128
from repro.crypto.counter_cache import COUNTERS_PER_LINE, CounterCache
from repro.crypto.otp import OTPCipher, make_block_cipher
from repro.config import CounterCacheConfig, EncryptionConfig
from repro.sim.machine import Machine
from repro.sim.snapshot import (
    CheckpointPolicy,
    SnapshotStore,
    result_fingerprint,
    run_with_checkpoints,
)
from repro.utils.accel import HAVE_NUMPY
from repro.workloads.base import WorkloadParams

KEY = st.binary(min_size=16, max_size=16)
BLOCKS = st.lists(st.binary(min_size=16, max_size=16), min_size=0, max_size=40)

#: (address, counter) pools kept small so batches collide: duplicate
#: keys inside one batch are the interesting accounting case.
ADDRESSES = st.integers(min_value=0, max_value=31).map(lambda i: i * 64)
COUNTERS = st.integers(min_value=0, max_value=5)
LINES = st.binary(min_size=64, max_size=64)
ITEMS = st.lists(st.tuples(ADDRESSES, COUNTERS, LINES), min_size=0, max_size=24)


def make_otp(cipher_name, limit=None):
    cipher = OTPCipher(make_block_cipher(EncryptionConfig(cipher=cipher_name)))
    if limit is not None:
        cipher._pad_cache_limit = limit
    return cipher


def pad_cache_state(cipher):
    return (
        cipher.pad_hits,
        cipher.pad_misses,
        cipher.pad_evictions,
        list(cipher._pad_cache.items()),
    )


class TestBatchedAES:
    @given(KEY, BLOCKS)
    @settings(max_examples=60, deadline=None)
    def test_encrypt_blocks_matches_scalar(self, key, blocks):
        aes = AES128(key)
        assert aes.encrypt_blocks(blocks) == [aes.encrypt_block(b) for b in blocks]

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not available")
    @given(KEY, st.integers(min_value=0, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_numpy_batch_matches_scalar_around_dispatch_threshold(self, key, delta):
        # Sizes straddling _NP_BATCH_MIN: both dispatch outcomes, plus
        # the forced-numpy path on sizes the dispatcher would keep scalar.
        aes = AES128(key)
        for count in (0, 1, _NP_BATCH_MIN - delta, _NP_BATCH_MIN + delta):
            count = max(0, count)
            blocks = [bytes([(count * 31 + i) % 256] * 16) for i in range(count)]
            expected = [aes.encrypt_block(b) for b in blocks]
            assert aes.encrypt_blocks(blocks) == expected
            assert aes.encrypt_blocks_numpy(blocks) == expected

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not available")
    def test_numpy_batch_matches_bytewise_reference(self):
        aes = AES128(bytes(range(16)))
        blocks = [bytes([i, 255 - i] * 8) for i in range(64)]
        slow = [aes._encrypt_block_slow(b) for b in blocks]
        assert aes.encrypt_blocks_numpy(blocks) == slow


class TestBatchedOTP:
    @pytest.mark.parametrize("cipher_name", ["aes", "prf"])
    @given(keys=st.lists(st.tuples(ADDRESSES, st.integers(min_value=1, max_value=5)), max_size=24))
    @settings(max_examples=40, deadline=None)
    def test_pads_many_matches_sequential(self, cipher_name, keys):
        batched = make_otp(cipher_name)
        sequential = make_otp(cipher_name)
        assert batched.pads_many(keys) == [sequential.pad(a, c) for a, c in keys]
        assert pad_cache_state(batched) == pad_cache_state(sequential)

    @pytest.mark.parametrize("cipher_name", ["aes", "prf"])
    @given(keys=st.lists(st.tuples(ADDRESSES, st.integers(min_value=1, max_value=5)), max_size=24))
    @settings(max_examples=25, deadline=None)
    def test_pads_many_matches_sequential_under_eviction(self, cipher_name, keys):
        # A tiny pad cache forces the eviction loop (and can evict a
        # pending placeholder mid-batch); state must still match.
        batched = make_otp(cipher_name, limit=4)
        sequential = make_otp(cipher_name, limit=4)
        assert batched.pads_many(keys) == [sequential.pad(a, c) for a, c in keys]
        assert pad_cache_state(batched) == pad_cache_state(sequential)

    @pytest.mark.parametrize("cipher_name", ["aes", "prf"])
    @given(items=ITEMS)
    @settings(max_examples=40, deadline=None)
    def test_encrypt_lines_matches_scalar(self, cipher_name, items):
        batched = make_otp(cipher_name)
        sequential = make_otp(cipher_name)
        assert batched.encrypt_lines(items) == [
            sequential.encrypt(a, c, t) for a, c, t in items
        ]
        assert pad_cache_state(batched) == pad_cache_state(sequential)

    @given(items=ITEMS)
    @settings(max_examples=20, deadline=None)
    def test_decrypt_lines_inverts_encrypt_lines(self, items):
        cipher = make_otp("prf")
        encrypted = cipher.encrypt_lines(items)
        roundtrip = cipher.decrypt_lines(
            [(a, c, e) for (a, c, _t), e in zip(items, encrypted)]
        )
        assert roundtrip == [t for _a, _c, t in items]


class TestBulkCounterCache:
    @given(
        addresses=st.lists(st.integers(min_value=0, max_value=255).map(lambda i: i * 64), max_size=64),
        warm=st.lists(st.integers(min_value=0, max_value=255).map(lambda i: i * 64), max_size=16),
    )
    @settings(max_examples=40, deadline=None)
    def test_lookup_many_matches_sequential(self, addresses, warm):
        def build():
            cache = CounterCache(CounterCacheConfig(size_bytes=4096, ways=2))
            cache.fill_many(
                [(a, tuple(range(1, COUNTERS_PER_LINE + 1))) for a in warm]
            )
            return cache

        bulk, seq = build(), build()
        assert bulk.lookup_for_read_many(addresses) == [
            seq.lookup_for_read(a) for a in addresses
        ]
        assert bulk.stats.as_dict() == seq.stats.as_dict()
        assert bulk.get_state() == seq.get_state()

    def test_fill_many_matches_sequential_fills(self):
        counters = tuple(range(1, COUNTERS_PER_LINE + 1))
        # One address per 512 B counter-line group so 40 fills install
        # 40 distinct lines into a 32-entry cache: guaranteed evictions.
        fills = [(a * 512, counters) for a in range(40)]

        bulk = CounterCache(CounterCacheConfig(size_bytes=2048, ways=2))
        seq = CounterCache(CounterCacheConfig(size_bytes=2048, ways=2))
        bulk_victims = []
        for chunk_start in range(0, len(fills), 8):
            chunk = fills[chunk_start : chunk_start + 8]
            bulk_victims.extend(bulk.fill_many(chunk))
            # Dirty what just landed so later evictions yield victims.
            for address, _ in chunk:
                bulk.update(address, address + 1)
        seq_victims = []
        for chunk_start in range(0, len(fills), 8):
            for address, line_counters in fills[chunk_start : chunk_start + 8]:
                victim = seq.fill(address, line_counters)
                if victim is not None:
                    seq_victims.append(victim)
            for address, _ in fills[chunk_start : chunk_start + 8]:
                seq.update(address, address + 1)
        assert bulk_victims == seq_victims
        assert bulk_victims  # eviction pressure actually produced writebacks
        assert bulk.get_state() == seq.get_state()


class TestFastForward:
    """run_with_checkpoints' chunked crash-free path (no on_event) must
    reproduce the per-event fingerprint exactly, checkpoints included."""

    def _scenario(self, mechanism, operations, seed):
        config = fast_config(num_cores=2, functional=True)
        traces, _runs, _layout = build_traces(
            "hash", config, mechanism, WorkloadParams(operations=operations, seed=seed)
        )
        stepped = Machine(config, "sca")
        expected = result_fingerprint(stepped.run(traces))
        return config, traces, expected, stepped.events_executed

    @given(
        mechanism=st.sampled_from(["undo", "redo"]),
        operations=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=8, deadline=None)
    def test_fast_forward_fingerprint_matches_stepped(self, mechanism, operations, seed):
        config, traces, expected, _total = self._scenario(mechanism, operations, seed)
        result, stats = run_with_checkpoints(Machine(config, "sca"), traces)
        assert result_fingerprint(result) == expected
        assert stats["restored"] == 0

    @given(seed=st.integers(min_value=1, max_value=50))
    @settings(max_examples=6, deadline=None)
    def test_fast_forward_with_checkpoints_resumes_identically(self, seed, tmp_path_factory):
        config, traces, expected, total = self._scenario("undo", 4, seed)
        cadence = max(1, total // 4)
        base = tmp_path_factory.mktemp("ff")
        store = SnapshotStore(str(base), code="ff")
        result, stats = run_with_checkpoints(
            Machine(config, "sca"),
            traces,
            store=store,
            policy=CheckpointPolicy(every_events=cadence),
        )
        assert result_fingerprint(result) == expected
        assert stats["saved"] >= 1
        # Resume from the newest on-disk snapshot: same fingerprint.
        resumed, resumed_stats = run_with_checkpoints(
            Machine(config, "sca"), traces, store=store
        )
        assert resumed_stats["restored"] == 1
        assert result_fingerprint(resumed) == expected
