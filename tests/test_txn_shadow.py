"""Tests for shadow-copy transactions."""

import pytest

from repro.config import CACHE_LINE_SIZE, fast_config
from repro.crash.injector import CrashInjector
from repro.crash.recovery import RecoveryManager
from repro.errors import TransactionError
from repro.sim.machine import Machine
from repro.sim.trace import OpKind, TraceBuilder
from repro.txn.heap import MemoryLayout
from repro.txn.shadow import ShadowTransactions, recover_shadow

REGION = 4 * CACHE_LINE_SIZE
V1 = bytes([1]) * 64
V2 = bytes([2]) * 64


@pytest.fixture
def setup():
    config = fast_config()
    layout = MemoryLayout.build(config, log_capacity=8)
    builder = TraceBuilder("shadow-test")
    txns = ShadowTransactions(builder, layout.arena(0), region_bytes=REGION)
    return config, layout, builder, txns


class TestMechanism:
    def test_copies_alternate(self, setup):
        _config, _layout, _builder, txns = setup
        first_active = txns.active_copy
        txns.commit_new_version([(0, V1)])
        assert txns.active_copy != first_active
        txns.commit_new_version([(0, V2)])
        assert txns.active_copy == first_active

    def test_selector_write_is_counter_atomic(self, setup):
        _config, _layout, builder, txns = setup
        txns.commit_new_version([(0, V1)])
        ca_stores = [
            op for op in builder.build()
            if op.kind is OpKind.STORE and op.counter_atomic
        ]
        assert len(ca_stores) == 1
        assert ca_stores[0].address == txns.selector_var.address

    def test_copy_writes_are_relaxable(self, setup):
        _config, _layout, builder, txns = setup
        target = txns.inactive_copy
        txns.commit_new_version([(0, V1)])
        copy_stores = [
            op for op in builder.build()
            if op.kind is OpKind.STORE and op.address == target
        ]
        assert copy_stores
        assert not any(op.counter_atomic for op in copy_stores)

    def test_bad_offsets_rejected(self, setup):
        _config, _layout, _builder, txns = setup
        with pytest.raises(TransactionError):
            txns.commit_new_version([(7, V1)])
        with pytest.raises(TransactionError):
            txns.commit_new_version([(REGION, V1)])
        with pytest.raises(TransactionError):
            txns.commit_new_version([(0, b"small")])

    def test_unaligned_region_rejected(self):
        config = fast_config()
        layout = MemoryLayout.build(config, log_capacity=8)
        with pytest.raises(TransactionError):
            ShadowTransactions(TraceBuilder("t"), layout.arena(0), region_bytes=100)


class TestRecovery:
    def test_crash_sweep_yields_old_or_new_version(self, setup):
        config, _layout, builder, txns = setup
        region = txns.region
        txns.commit_new_version([(0, V1)])
        txns.commit_new_version([(0, V2)])
        result = Machine(config, "sca").run([builder.build()])
        injector = CrashInjector(result)
        manager = RecoveryManager(config.encryption)
        seen = set()
        for crash_ns in injector.interesting_times(limit=60):
            recovered = manager.recover(injector.crash_at(crash_ns))
            _active, base = recover_shadow(recovered, region)
            value = recovered.read(base, 64)
            assert value in (bytes(64), V1, V2)
            seen.add(value)
        # The sweep crosses both committed versions.
        assert V1 in seen and V2 in seen
