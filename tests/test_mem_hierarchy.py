"""Tests for the L1/L2 hierarchy over the memory controller."""

import pytest

from repro.config import CACHE_LINE_SIZE, fast_config
from repro.core.designs import get_design
from repro.errors import AddressError
from repro.mem.controller import MemoryController
from repro.mem.hierarchy import CacheHierarchy


def make_hierarchy(design="sca", cores=1):
    config = fast_config(num_cores=cores)
    controller = MemoryController(config, get_design(design))
    return CacheHierarchy(config, controller), controller


class TestLoadPath:
    def test_cold_load_comes_from_memory(self):
        hierarchy, _ = make_hierarchy()
        access = hierarchy.load(0, 0x1000, 8, 0.0)
        assert access.served_by == "memory"
        assert access.data == bytes(8)

    def test_second_load_hits_l1(self):
        hierarchy, _ = make_hierarchy()
        hierarchy.load(0, 0x1000, 8, 0.0)
        access = hierarchy.load(0, 0x1000, 8, 1000.0)
        assert access.served_by == "l1"

    def test_sibling_core_hits_shared_l2(self):
        hierarchy, _ = make_hierarchy(cores=2)
        hierarchy.load(0, 0x1000, 8, 0.0)
        access = hierarchy.load(1, 0x1000, 8, 1000.0)
        assert access.served_by == "l2"

    def test_l1_hit_is_fastest(self):
        hierarchy, _ = make_hierarchy()
        hierarchy.load(0, 0x1000, 8, 0.0)
        hit = hierarchy.load(0, 0x1000, 8, 1000.0)
        assert hit.complete_ns - 1000.0 == pytest.approx(
            hierarchy.config.l1.hit_latency_ns
        )


class TestStorePath:
    def test_store_then_load_round_trip(self):
        hierarchy, _ = make_hierarchy()
        hierarchy.store(0, 0x1000, b"\xaa" * 8, 8, 0.0)
        access = hierarchy.load(0, 0x1000, 8, 100.0)
        assert access.data == b"\xaa" * 8

    def test_store_allocates_on_miss(self):
        hierarchy, _ = make_hierarchy()
        access = hierarchy.store(0, 0x1000, b"\xbb" * 8, 8, 0.0)
        assert access.served_by == "memory"
        assert hierarchy.l1s[0].contains(0x1000)

    def test_store_preserves_rest_of_line(self):
        hierarchy, controller = make_hierarchy()
        controller.write_line(0x1000, bytes(range(64)), 0.0)
        hierarchy.store(0, 0x1008, b"\xff" * 8, 8, 100.0)
        data = hierarchy.load(0, 0x1000, 8, 200.0).data
        assert data == bytes(range(8))

    def test_cross_line_access_rejected(self):
        hierarchy, _ = make_hierarchy()
        with pytest.raises(AddressError):
            hierarchy.load(0, 0x103C, 16, 0.0)
        with pytest.raises(AddressError):
            hierarchy.store(0, 0x103C, b"x" * 16, 16, 0.0)


class TestClwb:
    def test_clwb_pushes_data_to_nvm(self):
        hierarchy, controller = make_hierarchy()
        hierarchy.store(0, 0x1000, b"\xcc" * 8, 8, 0.0)
        accept = hierarchy.clwb(0, 0x1000, 100.0)
        assert accept is not None
        stored = controller.device.read_line(0x1000)
        plaintext = controller.engine.cipher.decrypt(
            0x1000, stored.encrypted_with, stored.payload
        )
        assert plaintext[:8] == b"\xcc" * 8

    def test_clwb_keeps_line_cached(self):
        hierarchy, _ = make_hierarchy()
        hierarchy.store(0, 0x1000, b"\xcc" * 8, 8, 0.0)
        hierarchy.clwb(0, 0x1000, 100.0)
        assert hierarchy.load(0, 0x1000, 8, 200.0).served_by == "l1"

    def test_clwb_clean_line_is_noop(self):
        hierarchy, _ = make_hierarchy()
        hierarchy.load(0, 0x1000, 8, 0.0)
        assert hierarchy.clwb(0, 0x1000, 100.0) is None

    def test_clwb_carries_counter_atomic_flag(self):
        hierarchy, controller = make_hierarchy()
        hierarchy.store(0, 0x1000, b"\x01" * 8, 8, 0.0, counter_atomic=True)
        hierarchy.clwb(0, 0x1000, 100.0)
        assert controller.stats.paired_writes == 1

    def test_clwb_finds_dirty_line_in_l2(self):
        """A line evicted from L1 into L2 is still clwb-able."""
        hierarchy, controller = make_hierarchy()
        hierarchy.store(0, 0x1000, b"\xdd" * 8, 8, 0.0)
        # Evict from L1 by filling its set.
        l1 = hierarchy.l1s[0]
        stride = l1.num_sets * CACHE_LINE_SIZE
        base = 0x1000
        for way in range(1, l1.ways + 1):
            hierarchy.load(0, base + way * stride, 8, 10.0 * way)
        assert not l1.contains(0x1000)
        accept = hierarchy.clwb(0, 0x1000, 1000.0)
        assert accept is not None


class TestEvictionWritebacks:
    def test_dirty_l2_eviction_reaches_controller(self):
        hierarchy, controller = make_hierarchy()
        l2 = hierarchy.l2
        stride = l2.num_sets * CACHE_LINE_SIZE
        hierarchy.store(0, 0x0, b"\xee" * 8, 8, 0.0)
        writes_before = controller.stats.data_writes
        # Blow through both L1 and L2 sets for address 0's set with
        # enough pressure that the dirty line falls out of both levels.
        for way in range(1, 3 * l2.ways + 2):
            hierarchy.load(0, way * stride, 8, 100.0 * way)
        assert controller.stats.data_writes > writes_before


class TestReadCurrent:
    def test_reads_through_cache(self):
        hierarchy, _ = make_hierarchy()
        hierarchy.store(0, 0x1000, b"\x42" * 8, 8, 0.0)
        assert hierarchy.read_current(0, 0x1000, 8) == b"\x42" * 8

    def test_reads_decrypted_nvm_when_uncached(self):
        hierarchy, controller = make_hierarchy()
        hierarchy.store(0, 0x1000, b"\x42" * 8, 8, 0.0)
        hierarchy.clwb(0, 0x1000, 10.0)
        hierarchy.invalidate_all()
        assert hierarchy.read_current(0, 0x1000, 8) == b"\x42" * 8


class TestFlushAll:
    def test_flush_all_dirty_persists_everything(self):
        hierarchy, controller = make_hierarchy()
        for i in range(8):
            hierarchy.store(0, 0x1000 + i * 64, bytes([i]) * 8, 8, float(i))
        hierarchy.flush_all_dirty(1000.0)
        hierarchy.invalidate_all()
        for i in range(8):
            assert hierarchy.read_current(0, 0x1000 + i * 64, 8) == bytes([i]) * 8
