"""Tests for the counter-atomicity (Eq. 4) invariant checker."""

import pytest

from repro.config import CACHE_LINE_SIZE, MB, EncryptionConfig
from repro.core.invariants import check_counter_atomicity, demonstrate_garbage
from repro.crypto.counters import CounterStore
from repro.crypto.otp import OTPCipher, make_block_cipher
from repro.nvm.address import AddressMap
from repro.nvm.device import NVMDevice

LINE = bytes(i % 256 for i in range(64))


@pytest.fixture
def setup():
    address_map = AddressMap(memory_size_bytes=64 * MB)
    device = NVMDevice(address_map)
    store = CounterStore(
        counter_region_base=address_map.counter_region_base,
        memory_size_bytes=address_map.memory_size_bytes,
    )
    cipher = OTPCipher(make_block_cipher(EncryptionConfig()))
    return device, store, cipher


class TestChecker:
    def test_in_sync_line_passes(self, setup):
        device, store, cipher = setup
        device.persist_line(0x40, cipher.encrypt(0x40, 7, LINE), encrypted_with=7)
        store.write(0x40, 7)
        assert check_counter_atomicity(device, store) == []

    def test_stale_counter_detected(self, setup):
        """Figure 3(a): data persisted, counter write lost."""
        device, store, cipher = setup
        device.persist_line(0x40, cipher.encrypt(0x40, 7, LINE), encrypted_with=7)
        store.write(0x40, 6)
        violations = check_counter_atomicity(device, store)
        assert len(violations) == 1
        assert violations[0].address == 0x40
        assert "out of sync" in violations[0].describe() or "garbage" in violations[0].describe()

    def test_stale_data_detected(self, setup):
        """Figure 3(b): counter persisted, data write lost."""
        device, store, cipher = setup
        device.persist_line(0x40, cipher.encrypt(0x40, 6, LINE), encrypted_with=6)
        store.write(0x40, 7)
        assert len(check_counter_atomicity(device, store)) == 1

    def test_scoped_check(self, setup):
        device, store, cipher = setup
        device.persist_line(0x40, cipher.encrypt(0x40, 7, LINE), encrypted_with=7)
        store.write(0x40, 1)  # violation at 0x40
        device.persist_line(0x80, cipher.encrypt(0x80, 2, LINE), encrypted_with=2)
        store.write(0x80, 2)  # consistent at 0x80
        assert check_counter_atomicity(device, store, addresses=[0x80]) == []
        assert len(check_counter_atomicity(device, store, addresses=[0x40])) == 1

    def test_counter_region_lines_ignored(self, setup):
        device, store, _ = setup
        counter_base = device.address_map.counter_region_base
        device.persist_line(counter_base, LINE, encrypted_with=0)
        assert check_counter_atomicity(device, store) == []


class TestGarbageDemonstration:
    def test_true_counter_recovers_stored_plaintext(self, setup):
        device, store, cipher = setup
        device.persist_line(0x40, cipher.encrypt(0x40, 9, LINE), encrypted_with=9)
        store.write(0x40, 3)
        result = demonstrate_garbage(cipher, device, store, 0x40)
        assert result["with_true_counter"] == LINE
        assert result["with_stored_counter"] != LINE
