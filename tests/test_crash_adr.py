"""Crash images without the ADR guarantee (``adr=False``).

Dropping ADR means only array-drained writes survive a crash, so
acknowledged commits can be lost — durability does not hold.  What must
still hold, for every transaction mechanism, is *fail-visible*
behaviour: recovery lands on some consistent transaction prefix or the
damage is reported through a detection channel.  Silent corruption or
a crashed recovery procedure would be a real finding.
"""

import pytest

from repro.bench.harness import run_workload
from repro.config import CACHE_LINE_SIZE, KB, fast_config
from repro.crash.checker import sweep_crash_points
from repro.crash.injector import CrashInjector
from repro.crash.recovery import RecoveryManager
from repro.errors import DecryptionFailure, TransactionError
from repro.sim.machine import Machine
from repro.sim.trace import TraceBuilder
from repro.txn.heap import MemoryLayout
from repro.txn.shadow import ShadowTransactions, recover_shadow
from repro.workloads.base import PrefixValidator, WorkloadParams

PARAMS = WorkloadParams(operations=6, footprint_bytes=8 * KB)
MECHANISMS = ("undo", "redo", "checksum-undo")


@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_no_adr_is_never_silent(mechanism):
    """Without ADR every log mechanism stays consistent or detects."""
    outcome = run_workload("sca", "array", mechanism=mechanism, params=PARAMS)
    injector = CrashInjector(outcome.result)
    # Commit durability needs ADR, so validate consistency only: build
    # the oracle without txn_end_times.
    validator = PrefixValidator(outcome.runs[0])
    manager = RecoveryManager(outcome.result.config.encryption)
    times = sorted(
        set(injector.interesting_times(limit=30))
        | set(injector.midpoint_times(limit=30))
    )
    consistent = detected = 0
    for crash_ns in times:
        image = injector.crash_at(crash_ns, adr=False)
        recovered = manager.recover(image, encrypted=True)
        verdict = validator.classify(recovered)
        if verdict.consistent:
            consistent += 1
        else:
            assert verdict.detected, (
                "silent corruption without ADR at %.1f ns: %s"
                % (crash_ns, verdict.silent)
            )
            detected += 1
    assert consistent > 0
    # ADR-less crashes do strand undrained pairs; some must be caught.
    assert detected > 0


@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_no_adr_sweep_reports_only_detected_problems(mechanism):
    outcome = run_workload("sca", "array", mechanism=mechanism, params=PARAMS)
    report = sweep_crash_points(
        outcome.result,
        PrefixValidator(outcome.runs[0]),
        max_points=40,
        adr=False,
    )
    assert report.total > 0
    for crash in report.outcomes:
        if not crash.consistent:
            # Every problem string came from a detection channel.
            assert all(
                "undecryptable" in problem or "recovery failed" in problem
                for problem in crash.problems
            ), crash.problems


def test_no_adr_shadow_yields_committed_version_or_detects():
    config = fast_config()
    layout = MemoryLayout.build(config, log_capacity=8)
    builder = TraceBuilder("shadow-no-adr")
    txns = ShadowTransactions(
        builder, layout.arena(0), region_bytes=4 * CACHE_LINE_SIZE
    )
    v1, v2 = bytes([1]) * CACHE_LINE_SIZE, bytes([2]) * CACHE_LINE_SIZE
    txns.commit_new_version([(0, v1)])
    txns.commit_new_version([(0, v2)])
    result = Machine(config, "sca").run([builder.build()])
    injector = CrashInjector(result)
    manager = RecoveryManager(config.encryption)
    seen = set()
    detected = 0
    for crash_ns in injector.interesting_times(limit=60):
        recovered = manager.recover(injector.crash_at(crash_ns, adr=False))
        try:
            _active, base = recover_shadow(recovered, txns.region)
            value = recovered.read(base, CACHE_LINE_SIZE)
        except (DecryptionFailure, TransactionError):
            detected += 1
            continue
        assert value in (bytes(CACHE_LINE_SIZE), v1, v2)
        seen.add(value)
    assert v1 in seen and v2 in seen


@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_no_adr_image_is_subset_of_adr_image(mechanism):
    outcome = run_workload("sca", "array", mechanism=mechanism, params=PARAMS)
    injector = CrashInjector(outcome.result)
    mid = outcome.result.stats.runtime_ns / 2
    with_adr = injector.crash_at(mid, adr=True)
    without = injector.crash_at(mid, adr=False)
    assert set(without.device.touched_lines()) <= set(with_adr.device.touched_lines())
    assert without.adr_pending == 0
